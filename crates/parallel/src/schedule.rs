//! Per-thread iteration schedules.
//!
//! A thread executes its iteration blocks in round-robin order and walks
//! each block lexicographically (outer loops slowest). The schedule is
//! produced lazily — the simulator streams billions of element accesses
//! through this iterator without materializing the iteration space.

use crate::blocks::BlockPartition;
use flo_polyhedral::IterSpace;

/// Lazy walk of the iterations executed by one thread.
#[derive(Clone, Debug)]
pub struct ThreadSchedule<'a> {
    space: &'a IterSpace,
    partition: &'a BlockPartition,
    thread: usize,
}

impl<'a> ThreadSchedule<'a> {
    /// Schedule of thread `t` under the given partition of `space`.
    pub fn new(space: &'a IterSpace, partition: &'a BlockPartition, thread: usize) -> Self {
        assert!(
            thread < partition.num_threads(),
            "ThreadSchedule: thread out of range"
        );
        ThreadSchedule {
            space,
            partition,
            thread,
        }
    }

    /// Total number of iterations this thread executes.
    pub fn iteration_count(&self) -> i64 {
        let other: i64 = (0..self.space.rank())
            .filter(|&k| k != self.partition.u())
            .map(|k| self.space.trip_count(k))
            .product();
        let width: i64 = self
            .partition
            .blocks_of_thread(self.thread)
            .map(|b| b.width())
            .sum();
        width * other
    }

    /// Iterate over the thread's iteration vectors in execution order.
    pub fn iterations(&self) -> impl Iterator<Item = Vec<i64>> + '_ {
        let u = self.partition.u();
        self.partition
            .blocks_of_thread(self.thread)
            .flat_map(move |block| {
                // Walk the sub-box where dimension u is restricted to the block.
                let mut lower: Vec<i64> = (0..self.space.rank())
                    .map(|k| self.space.lower(k))
                    .collect();
                let mut upper: Vec<i64> = (0..self.space.rank())
                    .map(|k| self.space.upper(k))
                    .collect();
                lower[u] = block.lo;
                upper[u] = block.hi;
                IterSpace::new(lower, upper).iter().collect::<Vec<_>>()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn schedules_partition_the_space() {
        let space = IterSpace::from_extents(&[6, 3]);
        let p = BlockPartition::new(&space, 0, 6, 2);
        let mut seen: HashSet<Vec<i64>> = HashSet::new();
        let mut total = 0usize;
        for t in 0..2 {
            let sched = ThreadSchedule::new(&space, &p, t);
            for i in sched.iterations() {
                assert!(space.contains(&i));
                assert!(seen.insert(i.clone()), "iteration {i:?} executed twice");
                total += 1;
            }
        }
        assert_eq!(total as i64, space.total_iterations());
    }

    #[test]
    fn iteration_count_matches_walk() {
        let space = IterSpace::from_extents(&[10, 4]);
        let p = BlockPartition::new(&space, 0, 4, 3);
        for t in 0..3 {
            let sched = ThreadSchedule::new(&space, &p, t);
            assert_eq!(sched.iterations().count() as i64, sched.iteration_count());
        }
    }

    #[test]
    fn round_robin_order_within_thread() {
        let space = IterSpace::from_extents(&[8, 1]);
        let p = BlockPartition::new(&space, 0, 4, 2);
        let sched = ThreadSchedule::new(&space, &p, 0);
        // Thread 0 owns blocks 0 ([0,2)) and 2 ([4,6)), in that order.
        let coords: Vec<i64> = sched.iterations().map(|i| i[0]).collect();
        assert_eq!(coords, vec![0, 1, 4, 5]);
    }

    #[test]
    fn inner_dimension_parallelization() {
        let space = IterSpace::from_extents(&[2, 8]);
        let p = BlockPartition::new(&space, 1, 4, 4);
        let sched = ThreadSchedule::new(&space, &p, 2);
        // Thread 2 owns block 2 = i1 in [4,6); outer loop i0 in [0,2).
        let iters: Vec<Vec<i64>> = sched.iterations().collect();
        assert_eq!(iters, vec![vec![0, 4], vec![0, 5], vec![1, 4], vec![1, 5]]);
    }

    #[test]
    fn thread_with_no_blocks_is_empty() {
        let space = IterSpace::from_extents(&[2, 2]);
        // 2 blocks, 4 threads: threads 2 and 3 get nothing.
        let p = BlockPartition::new(&space, 0, 2, 4);
        let sched = ThreadSchedule::new(&space, &p, 3);
        assert_eq!(sched.iterations().count(), 0);
        assert_eq!(sched.iteration_count(), 0);
    }
}
