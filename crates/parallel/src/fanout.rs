//! Deterministic thread fan-out over independent work items.
//!
//! The experiment harness and the trace generator both run embarrassingly
//! parallel loops (per-workload configurations, per-thread traces). This
//! module provides an order-preserving `parallel_map` built on
//! `std::thread::scope` — no external thread-pool crate is available in
//! the offline build environment, and none is needed: work items are
//! claimed from a shared atomic counter, so the load balances dynamically
//! while results land in input order, keeping every caller bit-for-bit
//! deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maximum worker threads, honoring the `FLO_THREADS` override (useful to
/// force sequential runs when profiling or debugging).
fn worker_cap() -> usize {
    if let Ok(v) = std::env::var("FLO_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `0..n`, running items concurrently; results are returned
/// in index order. Falls back to a plain sequential loop when `n <= 1` or
/// only one worker is available.
pub fn parallel_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = worker_cap().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots = Mutex::new((0..n).map(|_| None).collect::<Vec<Option<R>>>());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                // Claim items one at a time; buffer locally and flush in
                // batches so the slot lock is uncontended.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                    if local.len() >= 16 {
                        let mut out = slots.lock().unwrap();
                        for (k, r) in local.drain(..) {
                            out[k] = Some(r);
                        }
                    }
                }
                let mut out = slots.lock().unwrap();
                for (k, r) in local {
                    out[k] = Some(r);
                }
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("parallel_map_indexed: missing result"))
        .collect()
}

/// Map `f` over a slice concurrently, preserving order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let squares = parallel_map_indexed(100, |i| i * i);
        assert_eq!(squares, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn maps_slices() {
        let words = ["a", "bb", "ccc"];
        assert_eq!(parallel_map(&words, |w| w.len()), vec![1, 2, 3]);
    }

    #[test]
    fn handles_empty_and_singleton() {
        assert_eq!(parallel_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn matches_sequential_for_uneven_work() {
        // Items with wildly different costs still land in order.
        let out = parallel_map_indexed(64, |i| {
            let mut acc = 0u64;
            for k in 0..(i % 7) * 1000 {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        });
        for (i, pair) in out.iter().enumerate() {
            assert_eq!(pair.0, i);
        }
    }
}
