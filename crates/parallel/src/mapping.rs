//! Thread-to-compute-node mappings (Fig. 7(b)).
//!
//! The default execution assigns thread `t` to compute node `t`
//! (Mapping I). Mappings II–IV are "different random permutations of
//! threads to compute nodes" (§5.3); they are generated from a
//! deterministic seeded shuffle so experiments are reproducible. The
//! computation-mapping baseline additionally uses a topology-clustered
//! mapping.

use flo_linalg::SplitMix64;

/// An assignment of application threads to compute nodes.
///
/// Invariant: it is a bijection (the paper runs one thread per compute
/// node in the default setup).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadMapping {
    /// `node_of[t]` = compute node hosting thread `t`.
    node_of: Vec<usize>,
}

impl ThreadMapping {
    /// Mapping I: thread `t` on compute node `t`.
    pub fn identity(num_threads: usize) -> ThreadMapping {
        ThreadMapping {
            node_of: (0..num_threads).collect(),
        }
    }

    /// A seeded random permutation (Mappings II–IV use seeds 2, 3, 4).
    pub fn permutation(num_threads: usize, seed: u64) -> ThreadMapping {
        let mut node_of: Vec<usize> = (0..num_threads).collect();
        // Mix the seed so small consecutive seeds give unrelated shuffles.
        SplitMix64::new(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xA5A5).shuffle(&mut node_of);
        ThreadMapping { node_of }
    }

    /// The paper's four experimental mappings, in order I..IV.
    pub fn paper_mappings(num_threads: usize) -> Vec<(&'static str, ThreadMapping)> {
        vec![
            ("Mapping I", ThreadMapping::identity(num_threads)),
            ("Mapping II", ThreadMapping::permutation(num_threads, 2)),
            ("Mapping III", ThreadMapping::permutation(num_threads, 3)),
            ("Mapping IV", ThreadMapping::permutation(num_threads, 4)),
        ]
    }

    /// Build from an explicit permutation vector.
    pub fn from_vec(node_of: Vec<usize>) -> ThreadMapping {
        let n = node_of.len();
        let mut seen = vec![false; n];
        for &node in &node_of {
            assert!(node < n, "ThreadMapping: node index out of range");
            assert!(!seen[node], "ThreadMapping: not a bijection");
            seen[node] = true;
        }
        ThreadMapping { node_of }
    }

    /// Number of threads (= number of compute nodes).
    pub fn num_threads(&self) -> usize {
        self.node_of.len()
    }

    /// Compute node of thread `t`.
    pub fn node_of(&self, t: usize) -> usize {
        self.node_of[t]
    }

    /// Thread running on compute node `c` (inverse lookup).
    pub fn thread_on(&self, c: usize) -> usize {
        self.node_of
            .iter()
            .position(|&n| n == c)
            .expect("ThreadMapping: node out of range")
    }

    /// Whether this is the identity mapping.
    pub fn is_identity(&self) -> bool {
        self.node_of.iter().enumerate().all(|(t, &n)| t == n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mapping() {
        let m = ThreadMapping::identity(4);
        assert!(m.is_identity());
        assert_eq!(m.node_of(2), 2);
        assert_eq!(m.thread_on(3), 3);
    }

    #[test]
    fn permutation_is_bijection() {
        let m = ThreadMapping::permutation(64, 7);
        let mut nodes: Vec<usize> = (0..64).map(|t| m.node_of(t)).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_deterministic_per_seed() {
        assert_eq!(
            ThreadMapping::permutation(16, 2),
            ThreadMapping::permutation(16, 2)
        );
        assert_ne!(
            ThreadMapping::permutation(16, 2),
            ThreadMapping::permutation(16, 3)
        );
    }

    #[test]
    fn paper_mappings_distinct() {
        let maps = ThreadMapping::paper_mappings(32);
        assert_eq!(maps.len(), 4);
        assert!(maps[0].1.is_identity());
        for i in 0..maps.len() {
            for j in i + 1..maps.len() {
                assert_ne!(maps[i].1, maps[j].1, "mappings {i} and {j} collide");
            }
        }
    }

    #[test]
    fn inverse_lookup_roundtrip() {
        let m = ThreadMapping::permutation(10, 99);
        for t in 0..10 {
            assert_eq!(m.thread_on(m.node_of(t)), t);
        }
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn duplicate_node_rejected() {
        ThreadMapping::from_vec(vec![0, 0, 1]);
    }
}
