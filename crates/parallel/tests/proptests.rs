//! Property tests: iteration-block partitions and schedules cover every
//! iteration exactly once, for any parameters and either assignment.
//!
//! Cases are generated deterministically with SplitMix64 (the offline
//! build has no `proptest`); each failure message carries the case index
//! for replay.

use flo_linalg::SplitMix64;
use flo_parallel::{BlockAssignment, BlockPartition, ThreadMapping, ThreadSchedule};
use flo_polyhedral::IterSpace;
use std::collections::HashSet;

/// Blocks tile the parallel dimension exactly.
#[test]
fn blocks_tile_dimension() {
    let mut rng = SplitMix64::new(0xB10C);
    for case in 0..200 {
        let trip = rng.range_i64(1, 39);
        let inner = rng.range_i64(1, 5);
        let x = rng.range_usize(1, 11);
        let threads = rng.range_usize(1, 7);
        let assignment = if rng.bool() {
            BlockAssignment::Blocked
        } else {
            BlockAssignment::RoundRobin
        };
        let space = IterSpace::from_extents(&[trip, inner]);
        let p = BlockPartition::new(&space, 0, x, threads).with_assignment(assignment);
        let mut covered = vec![0u32; trip as usize];
        for b in p.blocks() {
            assert!(b.lo < b.hi, "case {case}");
            for i in b.lo..b.hi {
                covered[i as usize] += 1;
            }
            assert!(p.thread_of_block(b.index) < threads, "case {case}");
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "case {case}: blocks must tile exactly: {covered:?}"
        );
    }
}

/// Every iteration is executed by exactly one thread's schedule, and
/// the per-thread counts match `iteration_count`.
#[test]
fn schedules_partition_iterations() {
    let mut rng = SplitMix64::new(0x5CED);
    for case in 0..150 {
        let trip = rng.range_i64(1, 15);
        let inner = rng.range_i64(1, 5);
        let u = rng.range_usize(0, 1);
        let x = rng.range_usize(1, 7);
        let threads = rng.range_usize(1, 4);
        let assignment = if rng.bool() {
            BlockAssignment::Blocked
        } else {
            BlockAssignment::RoundRobin
        };
        let space = IterSpace::from_extents(&[trip, inner]);
        let p = BlockPartition::new(&space, u, x, threads).with_assignment(assignment);
        let mut seen: HashSet<Vec<i64>> = HashSet::new();
        for t in 0..threads {
            let sched = ThreadSchedule::new(&space, &p, t);
            let mut count = 0i64;
            for i in sched.iterations() {
                assert!(space.contains(&i), "case {case}");
                assert!(seen.insert(i), "case {case}: iteration executed twice");
                count += 1;
            }
            assert_eq!(count, sched.iteration_count(), "case {case}");
        }
        assert_eq!(seen.len() as i64, space.total_iterations(), "case {case}");
    }
}

/// Coordinate → block → thread lookups agree with block enumeration.
#[test]
fn coord_lookup_consistent() {
    let mut rng = SplitMix64::new(0xC003D);
    for case in 0..200 {
        let trip = rng.range_i64(2, 39);
        let x = rng.range_usize(1, 9);
        let threads = rng.range_usize(1, 5);
        let space = IterSpace::from_extents(&[trip, 2]);
        let p = BlockPartition::new(&space, 0, x, threads);
        for iu in 0..trip {
            let b = p.block_of_coord(iu);
            let blk = p.block(b);
            assert!(
                blk.lo <= iu && iu < blk.hi,
                "case {case}: coord {iu} not in its block"
            );
            assert_eq!(p.thread_of_coord(iu), p.thread_of_block(b), "case {case}");
        }
    }
}

/// Seeded permutations are bijections and reproducible.
#[test]
fn mappings_are_bijections() {
    let mut rng = SplitMix64::new(0xB17EC);
    for case in 0..200 {
        let n = rng.range_usize(1, 63);
        let seed = rng.range_usize(0, 999) as u64;
        let m = ThreadMapping::permutation(n, seed);
        let mut nodes: Vec<usize> = (0..n).map(|t| m.node_of(t)).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, (0..n).collect::<Vec<_>>(), "case {case}");
        assert_eq!(
            m.clone(),
            ThreadMapping::permutation(n, seed),
            "case {case}"
        );
        for t in 0..n {
            assert_eq!(
                ThreadMapping::permutation(n, seed).thread_on(m.node_of(t)),
                t,
                "case {case}"
            );
        }
    }
}
