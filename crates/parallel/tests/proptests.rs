//! Property tests: iteration-block partitions and schedules cover every
//! iteration exactly once, for any parameters and either assignment.

use flo_parallel::{BlockAssignment, BlockPartition, ThreadMapping, ThreadSchedule};
use flo_polyhedral::IterSpace;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Blocks tile the parallel dimension exactly.
    #[test]
    fn blocks_tile_dimension(
        trip in 1i64..40,
        inner in 1i64..6,
        x in 1usize..12,
        threads in 1usize..8,
        blocked in proptest::bool::ANY,
    ) {
        let space = IterSpace::from_extents(&[trip, inner]);
        let assignment =
            if blocked { BlockAssignment::Blocked } else { BlockAssignment::RoundRobin };
        let p = BlockPartition::new(&space, 0, x, threads).with_assignment(assignment);
        let mut covered = vec![0u32; trip as usize];
        for b in p.blocks() {
            prop_assert!(b.lo < b.hi);
            for i in b.lo..b.hi {
                covered[i as usize] += 1;
            }
            prop_assert!(p.thread_of_block(b.index) < threads);
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "blocks must tile exactly: {covered:?}");
    }

    /// Every iteration is executed by exactly one thread's schedule, and
    /// the per-thread counts match `iteration_count`.
    #[test]
    fn schedules_partition_iterations(
        trip in 1i64..16,
        inner in 1i64..6,
        u in 0usize..2,
        x in 1usize..8,
        threads in 1usize..5,
        blocked in proptest::bool::ANY,
    ) {
        let space = IterSpace::from_extents(&[trip, inner]);
        let assignment =
            if blocked { BlockAssignment::Blocked } else { BlockAssignment::RoundRobin };
        let p = BlockPartition::new(&space, u, x, threads).with_assignment(assignment);
        let mut seen: HashSet<Vec<i64>> = HashSet::new();
        for t in 0..threads {
            let sched = ThreadSchedule::new(&space, &p, t);
            let mut count = 0i64;
            for i in sched.iterations() {
                prop_assert!(space.contains(&i));
                prop_assert!(seen.insert(i), "iteration executed twice");
                count += 1;
            }
            prop_assert_eq!(count, sched.iteration_count());
        }
        prop_assert_eq!(seen.len() as i64, space.total_iterations());
    }

    /// Coordinate → block → thread lookups agree with block enumeration.
    #[test]
    fn coord_lookup_consistent(trip in 2i64..40, x in 1usize..10, threads in 1usize..6) {
        let space = IterSpace::from_extents(&[trip, 2]);
        let p = BlockPartition::new(&space, 0, x, threads);
        for iu in 0..trip {
            let b = p.block_of_coord(iu);
            let blk = p.block(b);
            prop_assert!(blk.lo <= iu && iu < blk.hi, "coord {iu} not in its block");
            prop_assert_eq!(p.thread_of_coord(iu), p.thread_of_block(b));
        }
    }

    /// Seeded permutations are bijections and reproducible.
    #[test]
    fn mappings_are_bijections(n in 1usize..64, seed in 0u64..1000) {
        let m = ThreadMapping::permutation(n, seed);
        let mut nodes: Vec<usize> = (0..n).map(|t| m.node_of(t)).collect();
        nodes.sort_unstable();
        prop_assert_eq!(nodes, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(m.clone(), ThreadMapping::permutation(n, seed));
        for t in 0..n {
            prop_assert_eq!(
                ThreadMapping::permutation(n, seed).thread_on(m.node_of(t)),
                t
            );
        }
    }
}
