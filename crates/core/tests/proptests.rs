//! Property-based tests of the compiler core: Step I solutions always
//! satisfy Eq. (4), chunk addressing never collides, and Algorithm 1
//! builds injective tables for arbitrary partitioning rows.

use flo_core::algorithm1::{build_hier_layout, SMapping};
use flo_core::partition::{partition_array, AccessConstraint, PartitionOutcome};
use flo_core::pattern::ChunkAddresser;
use flo_core::target::{HierLevel, HierSpec};
use flo_linalg::IMat;
use flo_parallel::BlockPartition;
use flo_polyhedral::{e_u_matrix, DataSpace, IterSpace};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random small access matrix (2×2, entries in [-2, 2], nonzero).
fn access_matrix() -> impl Strategy<Value = IMat> {
    proptest::collection::vec(-2i64..=2, 4).prop_filter_map("nonsingular-ish", |v| {
        let m = IMat::from_vec(2, 2, v);
        if m.is_zero() {
            None
        } else {
            Some(m)
        }
    })
}

proptest! {
    /// Whenever Step I optimizes, the returned d annihilates Q·E_uᵀ for
    /// every satisfied constraint, D is unimodular, and α > 0.
    #[test]
    fn step1_solutions_satisfy_eq4(
        qs in proptest::collection::vec(access_matrix(), 1..4),
        u in 0usize..2,
    ) {
        let constraints: Vec<AccessConstraint> = qs
            .iter()
            .enumerate()
            .map(|(k, q)| AccessConstraint { q: q.clone(), u, weight: 100 - k as i64 })
            .collect();
        if let PartitionOutcome::Optimized(p) = partition_array(&constraints) {
            prop_assert!(flo_linalg::is_unimodular(&p.d));
            prop_assert!(p.alpha > 0);
            prop_assert_eq!(p.d.row(0), &p.d_row[..]);
            for (c, &sat) in constraints.iter().zip(&p.satisfied) {
                if sat {
                    let m = &c.q * &e_u_matrix(c.q.cols(), c.u).transpose();
                    let prod = m.vec_mul(&p.d_row);
                    prop_assert!(
                        prod.iter().all(|&x| x == 0),
                        "satisfied constraint violated: {prod:?}"
                    );
                }
            }
            prop_assert!(p.satisfied[0], "the heaviest constraint is always satisfied");
        }
    }

    /// Chunk addresses never collide across threads and chunk indices,
    /// for random hierarchy shapes.
    #[test]
    fn chunk_addresses_never_collide(
        l in 1usize..4,
        groups in 1usize..5,
        cap1 in 4u64..64,
        cap2 in 4u64..256,
        per_thread in 1u64..64,
    ) {
        let threads = l * groups;
        let spec = HierSpec {
            levels: vec![
                HierLevel { caches: groups, capacity_elems: cap1 },
                HierLevel { caches: 1, capacity_elems: cap2 },
            ],
            threads,
            group_of_thread: (0..threads).map(|t| t / l).collect(),
            block_elems: 2,
        };
        let addr = ChunkAddresser::for_data(&spec, per_thread);
        let mut seen: HashSet<(u64, u64)> = HashSet::new();
        for t in 0..threads {
            for x in 0..12u64 {
                let start = addr.chunk_start(t, x);
                let range = (start, start + addr.chunk_elems());
                for other in &seen {
                    prop_assert!(
                        range.1 <= other.0 || other.1 <= range.0,
                        "chunk overlap: {range:?} vs {other:?} (thread {t}, x {x})"
                    );
                }
                seen.insert(range);
            }
        }
    }

    /// Algorithm 1 builds an injective table for random d rows, alphas and
    /// array shapes.
    #[test]
    fn algorithm1_tables_are_injective(
        d0 in -2i64..=2,
        d1 in -2i64..=2,
        alpha in 1i64..3,
        rows in 4i64..12,
        cols in 4i64..12,
    ) {
        prop_assume!(d0 != 0 || d1 != 0);
        prop_assume!(flo_linalg::gcd(d0, d1) == 1);
        let space = DataSpace::new(vec![rows, cols]);
        let iter = IterSpace::from_extents(&[rows, cols]);
        let partition = BlockPartition::new(&iter, 0, 4, 4);
        let spec = HierSpec {
            levels: vec![
                HierLevel { caches: 2, capacity_elems: 16 },
                HierLevel { caches: 1, capacity_elems: 64 },
            ],
            threads: 4,
            group_of_thread: vec![0, 0, 1, 1],
            block_elems: 2,
        };
        let per_thread = (space.num_elements() as u64).div_ceil(4);
        let addr = ChunkAddresser::for_data(&spec, per_thread);
        let layout = build_hier_layout(
            &space,
            &[d0, d1],
            SMapping { alpha, beta: 0 },
            &partition,
            &addr,
            None,
        );
        let mut offs = layout.table.clone();
        offs.sort_unstable();
        let len = offs.len();
        offs.dedup();
        prop_assert_eq!(offs.len(), len, "table must be injective");
        prop_assert_eq!(layout.file_elems, *offs.last().unwrap() + 1);
    }
}
