//! Property-based tests of the compiler core: Step I solutions always
//! satisfy Eq. (4), chunk addressing never collides, and Algorithm 1
//! builds injective tables for arbitrary partitioning rows.
//!
//! Deterministic SplitMix64 case generation replaces `proptest`
//! (unavailable offline); failures carry a case index for replay.

use flo_core::algorithm1::{build_hier_layout, SMapping};
use flo_core::partition::{partition_array, AccessConstraint, PartitionOutcome};
use flo_core::pattern::ChunkAddresser;
use flo_core::target::{HierLevel, HierSpec};
use flo_linalg::{IMat, SplitMix64};
use flo_parallel::BlockPartition;
use flo_polyhedral::{e_u_matrix, DataSpace, IterSpace};
use std::collections::HashSet;

/// Random small access matrix (2×2, entries in [-2, 2], nonzero).
fn access_matrix(rng: &mut SplitMix64) -> IMat {
    loop {
        let v = (0..4).map(|_| rng.range_i64(-2, 2)).collect();
        let m = IMat::from_vec(2, 2, v);
        if !m.is_zero() {
            return m;
        }
    }
}

/// Whenever Step I optimizes, the returned d annihilates Q·E_uᵀ for
/// every satisfied constraint, D is unimodular, and α > 0.
#[test]
fn step1_solutions_satisfy_eq4() {
    let mut rng = SplitMix64::new(0xE94);
    for case in 0..300 {
        let n_qs = rng.range_usize(1, 3);
        let u = rng.range_usize(0, 1);
        let constraints: Vec<AccessConstraint> = (0..n_qs)
            .map(|k| AccessConstraint {
                q: access_matrix(&mut rng),
                u,
                weight: 100 - k as i64,
            })
            .collect();
        if let PartitionOutcome::Optimized(p) = partition_array(&constraints) {
            assert!(flo_linalg::is_unimodular(&p.d), "case {case}");
            assert!(p.alpha > 0, "case {case}");
            assert_eq!(p.d.row(0), &p.d_row[..], "case {case}");
            for (c, &sat) in constraints.iter().zip(&p.satisfied) {
                if sat {
                    let m = &c.q * &e_u_matrix(c.q.cols(), c.u).transpose();
                    let prod = m.vec_mul(&p.d_row);
                    assert!(
                        prod.iter().all(|&x| x == 0),
                        "case {case}: satisfied constraint violated: {prod:?}"
                    );
                }
            }
            assert!(
                p.satisfied[0],
                "case {case}: the heaviest constraint is always satisfied"
            );
        }
    }
}

/// Chunk addresses never collide across threads and chunk indices,
/// for random hierarchy shapes.
#[test]
fn chunk_addresses_never_collide() {
    let mut rng = SplitMix64::new(0xC40);
    for case in 0..60 {
        let l = rng.range_usize(1, 3);
        let groups = rng.range_usize(1, 4);
        let cap1 = rng.below(60) + 4;
        let cap2 = rng.below(252) + 4;
        let per_thread = rng.below(63) + 1;
        let threads = l * groups;
        let spec = HierSpec {
            levels: vec![
                HierLevel {
                    caches: groups,
                    capacity_elems: cap1,
                },
                HierLevel {
                    caches: 1,
                    capacity_elems: cap2,
                },
            ],
            threads,
            group_of_thread: (0..threads).map(|t| t / l).collect(),
            block_elems: 2,
        };
        let addr = ChunkAddresser::for_data(&spec, per_thread);
        let mut seen: HashSet<(u64, u64)> = HashSet::new();
        for t in 0..threads {
            for x in 0..12u64 {
                let start = addr.chunk_start(t, x);
                let range = (start, start + addr.chunk_elems());
                for other in &seen {
                    assert!(
                        range.1 <= other.0 || other.1 <= range.0,
                        "case {case}: chunk overlap: {range:?} vs {other:?} (thread {t}, x {x})"
                    );
                }
                seen.insert(range);
            }
        }
    }
}

/// Algorithm 1 builds an injective table for random d rows, alphas and
/// array shapes.
#[test]
fn algorithm1_tables_are_injective() {
    let mut rng = SplitMix64::new(0xA16);
    for case in 0..100 {
        let (d0, d1) = loop {
            let d0 = rng.range_i64(-2, 2);
            let d1 = rng.range_i64(-2, 2);
            if (d0 != 0 || d1 != 0) && flo_linalg::gcd(d0, d1) == 1 {
                break (d0, d1);
            }
        };
        let alpha = rng.range_i64(1, 2);
        let rows = rng.range_i64(4, 11);
        let cols = rng.range_i64(4, 11);
        let space = DataSpace::new(vec![rows, cols]);
        let iter = IterSpace::from_extents(&[rows, cols]);
        let partition = BlockPartition::new(&iter, 0, 4, 4);
        let spec = HierSpec {
            levels: vec![
                HierLevel {
                    caches: 2,
                    capacity_elems: 16,
                },
                HierLevel {
                    caches: 1,
                    capacity_elems: 64,
                },
            ],
            threads: 4,
            group_of_thread: vec![0, 0, 1, 1],
            block_elems: 2,
        };
        let per_thread = (space.num_elements() as u64).div_ceil(4);
        let addr = ChunkAddresser::for_data(&spec, per_thread);
        let layout = build_hier_layout(
            &space,
            &[d0, d1],
            SMapping { alpha, beta: 0 },
            &partition,
            &addr,
            None,
        );
        let mut offs = layout.table.clone();
        offs.sort_unstable();
        let len = offs.len();
        offs.dedup();
        assert_eq!(offs.len(), len, "case {case}: table must be injective");
        assert_eq!(layout.file_elems, *offs.last().unwrap() + 1, "case {case}");
    }
}
