//! Step I: array partitioning via unimodular data transformations (§4.1).
//!
//! For each array we look for a transformed data hyperplane `h_A = e_v`
//! (we fix `v = 0` WLOG) and a unimodular `D` such that two iterations on
//! the same iteration hyperplane always touch data on the same transformed
//! data hyperplane:
//!
//! ```text
//! h_A · D · Q_k · E_u = 0          for the chosen references k   (Eq. 4)
//! ```
//!
//! Writing `d = h_A · D` (row `v` of `D`), each reference contributes the
//! linear constraint `d · (Q_k · E_uᵀ) = 0`, so `d` must lie in the
//! intersection of the left nullspaces of the matrices `Q_k · E_uᵀ`. A
//! solution is *useful* only if `d · Q · e_u ≠ 0` for the primary
//! reference — otherwise the transformed coordinate would not vary across
//! iteration blocks and every thread would share one data hyperplane.
//!
//! When no single `d` satisfies every reference, the paper's weighted
//! strategy (Eq. 5) applies: process access matrices in decreasing weight
//! order, greedily keeping each one whose constraints still admit a useful
//! solution. The final primitive `d` is completed to a unimodular `D`.

use flo_linalg::{complete_to_unimodular, left_nullspace, make_primitive, IMat};
use flo_polyhedral::e_u_matrix;

/// One distinct access-matrix constraint: `(Q, u, weight)`.
#[derive(Clone, Debug)]
pub struct AccessConstraint {
    /// The access matrix (`m × n`).
    pub q: IMat,
    /// The parallelized loop dimension of the nests this matrix appears in.
    pub u: usize,
    /// The paper's weight `W(Q)` (Eq. 5).
    pub weight: i64,
}

/// A successful Step I result.
#[derive(Clone, Debug)]
pub struct Partitioning {
    /// The full unimodular data transformation `D` (row 0 is `d`).
    pub d: IMat,
    /// The partitioning row `d = h_A · D` (so `v = 0`).
    pub d_row: Vec<i64>,
    /// `d · Q₁ · e_u` for the primary reference — the (positive) rate at
    /// which the transformed coordinate advances per iteration hyperplane.
    pub alpha: i64,
    /// Which input constraints the transformation satisfies.
    pub satisfied: Vec<bool>,
    /// Weight-fraction of references satisfied, in [0, 1].
    pub satisfied_weight_fraction: f64,
}

/// Why Step I declined to transform an array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NotOptimizableReason {
    /// The array is never referenced.
    NoReferences,
    /// Even the heaviest single reference admits no useful solution
    /// (e.g. the access does not depend on the parallel loop at all, or
    /// conflicting constraints annihilate every candidate).
    NoUsefulSolution,
}

/// The outcome of Step I on one array.
#[derive(Clone, Debug)]
pub enum PartitionOutcome {
    /// A transformation was found.
    Optimized(Partitioning),
    /// The array keeps its original layout.
    NotOptimizable(NotOptimizableReason),
}

impl PartitionOutcome {
    /// Whether a transformation was found.
    pub fn is_optimized(&self) -> bool {
        matches!(self, PartitionOutcome::Optimized(_))
    }
}

/// The constraint matrix `M = Q · E_uᵀ` of one reference.
fn constraint_matrix(q: &IMat, u: usize) -> IMat {
    let n = q.cols();
    q * &e_u_matrix(n, u).transpose()
}

/// `Q · e_u`: the column of `Q` along the parallelized dimension.
fn q_e_u(q: &IMat, u: usize) -> Vec<i64> {
    q.col(u)
}

/// Pick a useful primitive solution from the combined left-nullspace, or
/// `None`. Usefulness is measured against the primary reference's
/// `Q·e_u`; among useful basis vectors the one with the smallest L1 norm
/// (then lexicographically smallest) is chosen so the compiler's output is
/// simple and deterministic.
fn pick_useful(basis: &[Vec<i64>], primary_qe: &[i64]) -> Option<Vec<i64>> {
    let mut best: Option<Vec<i64>> = None;
    for b in basis {
        let dot = flo_linalg::dot(b, primary_qe);
        if dot == 0 {
            continue;
        }
        let better = match &best {
            None => true,
            Some(cur) => {
                let l1 = |v: &[i64]| v.iter().map(|x| x.abs()).sum::<i64>();
                (l1(b), b.clone()) < (l1(cur), cur.clone())
            }
        };
        if better {
            best = Some(b.clone());
        }
    }
    best
}

/// Run Step I over the distinct access matrices of one array.
///
/// `constraints` must be sorted by decreasing weight (ties broken
/// deterministically), as produced by
/// [`flo_polyhedral::Program::access_profile`].
pub fn partition_array(constraints: &[AccessConstraint]) -> PartitionOutcome {
    if constraints.is_empty() {
        return PartitionOutcome::NotOptimizable(NotOptimizableReason::NoReferences);
    }
    let m = constraints[0].q.rows();
    debug_assert!(
        constraints.iter().all(|c| c.q.rows() == m),
        "mixed array ranks"
    );
    let primary = &constraints[0];
    let primary_qe = q_e_u(&primary.q, primary.u);

    // Greedy accumulation in weight order (the paper's "most beneficial
    // linear system first").
    let mut accepted: Vec<usize> = Vec::new();
    let mut combined: Option<IMat> = None;
    let mut current_d: Option<Vec<i64>> = None;
    for (k, c) in constraints.iter().enumerate() {
        let mk = constraint_matrix(&c.q, c.u);
        let trial = match &combined {
            None => mk.clone(),
            Some(m0) => m0.hcat(&mk),
        };
        let basis = left_nullspace(&trial);
        if let Some(d) = pick_useful(&basis, &primary_qe) {
            combined = Some(trial);
            accepted.push(k);
            current_d = Some(d);
        } else if k == 0 {
            // The heaviest reference alone is unsolvable: give up.
            return PartitionOutcome::NotOptimizable(NotOptimizableReason::NoUsefulSolution);
        }
        // Otherwise: skip this reference (it stays unsatisfied).
    }
    let d_raw = current_d.expect("accepted set is non-empty");
    let mut d_row = make_primitive(&d_raw).expect("nullspace vectors are nonzero");
    // Normalize the sign so the transformed coordinate increases with the
    // parallel loop of the primary reference.
    let mut alpha = flo_linalg::dot(&d_row, &primary_qe);
    if alpha < 0 {
        for x in &mut d_row {
            *x = -*x;
        }
        alpha = -alpha;
    }
    debug_assert!(alpha > 0);
    let d = complete_to_unimodular(&d_row, 0).expect("primitive row must complete");

    let satisfied: Vec<bool> = (0..constraints.len())
        .map(|k| accepted.contains(&k))
        .collect();
    let total_w: i64 = constraints.iter().map(|c| c.weight).sum();
    let sat_w: i64 = constraints
        .iter()
        .zip(&satisfied)
        .filter(|(_, &s)| s)
        .map(|(c, _)| c.weight)
        .sum();
    PartitionOutcome::Optimized(Partitioning {
        d,
        d_row,
        alpha,
        satisfied,
        satisfied_weight_fraction: if total_w == 0 {
            1.0
        } else {
            sat_w as f64 / total_w as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(q: IMat, u: usize, weight: i64) -> AccessConstraint {
        AccessConstraint { q, u, weight }
    }

    /// Verify Eq. (4): d · Q · E_uᵀ = 0 for satisfied constraints.
    fn assert_satisfies(p: &Partitioning, q: &IMat, u: usize) {
        let m = constraint_matrix(q, u);
        let prod = m.vec_mul(&p.d_row);
        assert!(prod.iter().all(|&x| x == 0), "d·Q·E_uᵀ != 0: {prod:?}");
    }

    #[test]
    fn row_access_identity() {
        // A[i1, i2] with u = 0: rows are per-thread slabs already; d should
        // isolate dimension 0 of the data space.
        let q = IMat::identity(2);
        let out = partition_array(&[c(q.clone(), 0, 100)]);
        let PartitionOutcome::Optimized(p) = out else {
            panic!("must optimize")
        };
        assert_satisfies(&p, &q, 0);
        assert_eq!(p.d_row, vec![1, 0]);
        assert_eq!(p.alpha, 1);
        assert!(flo_linalg::is_unimodular(&p.d));
    }

    #[test]
    fn column_access_transposes() {
        // A[i2, i1] with u = 0: thread owns a set of *columns*; d must pick
        // the second data dimension.
        let q = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let out = partition_array(&[c(q.clone(), 0, 100)]);
        let PartitionOutcome::Optimized(p) = out else {
            panic!("must optimize")
        };
        assert_satisfies(&p, &q, 0);
        assert_eq!(p.d_row, vec![0, 1]);
    }

    #[test]
    fn diagonal_access() {
        // A[i1 + i2, i2] with u = 0 in a 2-deep nest: hyperplanes of
        // constant i1 map to lines a0 - a1 = i1 → d = (1, -1).
        let q = IMat::from_rows(&[&[1, 1], &[0, 1]]);
        let out = partition_array(&[c(q.clone(), 0, 10)]);
        let PartitionOutcome::Optimized(p) = out else {
            panic!("must optimize")
        };
        assert_satisfies(&p, &q, 0);
        assert_eq!(p.alpha, 1);
        // d·Q = (α, 0): check directly.
        let dq = q.transpose().mul_vec(&p.d_row);
        assert_eq!(dq, vec![1, 0]);
    }

    #[test]
    fn matmul_example_from_paper() {
        // W[i1, i2] in the 3-deep matmul nest (Fig. 3(b)), u = 0.
        let q = IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0]]);
        let out = partition_array(&[c(q.clone(), 0, 1000)]);
        let PartitionOutcome::Optimized(p) = out else {
            panic!("must optimize")
        };
        assert_satisfies(&p, &q, 0);
        assert_eq!(p.d_row, vec![1, 0]);
    }

    #[test]
    fn access_independent_of_u_is_rejected() {
        // V[i3, i2] in the matmul nest with u = 0: V's elements do not
        // depend on i1 at all, so no data hyperplane separates threads.
        let q = IMat::from_rows(&[&[0, 0, 1], &[0, 1, 0]]);
        let out = partition_array(&[c(q, 0, 1000)]);
        assert!(!out.is_optimized());
    }

    #[test]
    fn weighted_conflict_prefers_heavy_reference() {
        // Two conflicting references: row access (heavy) and column access
        // (light). No d satisfies both; the heavy one must win.
        let row = IMat::identity(2);
        let col = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let out = partition_array(&[c(row.clone(), 0, 900), c(col.clone(), 0, 100)]);
        let PartitionOutcome::Optimized(p) = out else {
            panic!("must optimize")
        };
        assert_satisfies(&p, &row, 0);
        assert_eq!(p.satisfied, vec![true, false]);
        assert!((p.satisfied_weight_fraction - 0.9).abs() < 1e-12);
        assert_eq!(p.d_row, vec![1, 0]);
    }

    #[test]
    fn compatible_references_all_satisfied() {
        // Same Q with different offsets collapse earlier; here two distinct
        // but compatible Qs: A[i1, i2] and A[i1, i2+i1]? Q2 = [[1,0],[1,1]].
        // d = (1, 0) works for both: d·Q1 = (1,0), d·Q2 = (1,0).
        let q1 = IMat::identity(2);
        let q2 = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        let out = partition_array(&[c(q1.clone(), 0, 500), c(q2.clone(), 0, 500)]);
        let PartitionOutcome::Optimized(p) = out else {
            panic!("must optimize")
        };
        assert_satisfies(&p, &q1, 0);
        assert_satisfies(&p, &q2, 0);
        assert_eq!(p.satisfied, vec![true, true]);
        assert_eq!(p.satisfied_weight_fraction, 1.0);
    }

    #[test]
    fn one_dimensional_array() {
        // B[i1] in a 2-deep nest, u = 0: M = Q·E_0ᵀ = column of zeros →
        // d = (1) works.
        let q = IMat::from_rows(&[&[1, 0]]);
        let out = partition_array(&[c(q.clone(), 0, 10)]);
        let PartitionOutcome::Optimized(p) = out else {
            panic!("must optimize")
        };
        assert_eq!(p.d_row, vec![1]);
        assert_satisfies(&p, &q, 0);
    }

    #[test]
    fn one_dim_array_indexed_by_inner_loop_rejected() {
        // B[i2] with u = 0: every thread sweeps the whole array; no
        // partition exists. M = Q·E_0ᵀ = [1] → left nullspace empty.
        let q = IMat::from_rows(&[&[0, 1]]);
        let out = partition_array(&[c(q, 0, 10)]);
        assert!(!out.is_optimized());
    }

    #[test]
    fn inner_parallel_dimension() {
        // A[i1, i2] parallelized on u = 1: threads own column slabs; d
        // must pick data dimension 1.
        let q = IMat::identity(2);
        let out = partition_array(&[c(q.clone(), 1, 10)]);
        let PartitionOutcome::Optimized(p) = out else {
            panic!("must optimize")
        };
        assert_eq!(p.d_row, vec![0, 1]);
        let m = constraint_matrix(&q, 1);
        assert!(m.vec_mul(&p.d_row).iter().all(|&x| x == 0));
    }

    #[test]
    fn no_references() {
        assert!(matches!(
            partition_array(&[]),
            PartitionOutcome::NotOptimizable(NotOptimizableReason::NoReferences)
        ));
    }

    #[test]
    fn negative_alpha_normalized() {
        // A[-i1 + i2, i2]? Use Q = [[-1, 0], [0, 1]]: d = (1, 0) gives
        // α = -1 → must be flipped to d = (-1, 0), α = 1.
        let q = IMat::from_rows(&[&[-1, 0], &[0, 1]]);
        let out = partition_array(&[c(q.clone(), 0, 10)]);
        let PartitionOutcome::Optimized(p) = out else {
            panic!("must optimize")
        };
        assert!(p.alpha > 0);
        assert_satisfies(&p, &q, 0);
    }

    #[test]
    fn strided_access_alpha_greater_than_one() {
        // A[2·i1, i2]: d = (1, 0), α = 2 — thread slabs are every other
        // data hyperplane.
        let q = IMat::from_rows(&[&[2, 0], &[0, 1]]);
        let out = partition_array(&[c(q.clone(), 0, 10)]);
        let PartitionOutcome::Optimized(p) = out else {
            panic!("must optimize")
        };
        assert_eq!(p.alpha, 2);
        assert_satisfies(&p, &q, 0);
    }

    #[test]
    fn three_conflicting_references_greedy() {
        // Heaviest: row. Middle: col (conflicts). Lightest: row-compatible.
        let row = IMat::identity(2);
        let col = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        let rowish = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        let out = partition_array(&[c(row, 0, 600), c(col, 0, 300), c(rowish, 0, 100)]);
        let PartitionOutcome::Optimized(p) = out else {
            panic!("must optimize")
        };
        assert_eq!(p.satisfied, vec![true, false, true]);
        assert!((p.satisfied_weight_fraction - 0.7).abs() < 1e-12);
    }
}
