//! The block-footprint cost model.
//!
//! §2's central observation: a layout is good when each thread's accesses
//! occupy few data blocks ("block footprint"), because the footprint is
//! what competes for shared cache space at every layer. This module
//! measures footprints from generated traces and aggregates them per cache
//! group — the quantity the optimization provably shrinks, independent of
//! any cache policy.

use flo_sim::{ThreadTrace, Topology};
use std::collections::HashSet;

/// Footprint statistics of one run configuration.
#[derive(Clone, Debug, Default)]
pub struct FootprintReport {
    /// Distinct blocks touched by each thread.
    pub per_thread: Vec<usize>,
    /// Distinct blocks flowing through each I/O-node cache.
    pub per_io_group: Vec<usize>,
    /// Distinct blocks flowing through each storage-node cache.
    pub per_storage_group: Vec<usize>,
    /// Total block requests (post-coalescing).
    pub total_requests: usize,
}

impl FootprintReport {
    /// Largest per-thread footprint.
    pub fn max_thread_footprint(&self) -> usize {
        self.per_thread.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-thread footprint.
    pub fn mean_thread_footprint(&self) -> f64 {
        if self.per_thread.is_empty() {
            return 0.0;
        }
        self.per_thread.iter().sum::<usize>() as f64 / self.per_thread.len() as f64
    }

    /// Worst I/O-cache pressure: max group footprint over cache capacity.
    pub fn io_pressure(&self, topo: &Topology) -> f64 {
        self.per_io_group.iter().copied().max().unwrap_or(0) as f64 / topo.io_cache_blocks as f64
    }

    /// Worst storage-cache pressure.
    pub fn storage_pressure(&self, topo: &Topology) -> f64 {
        self.per_storage_group.iter().copied().max().unwrap_or(0) as f64
            / topo.storage_cache_blocks as f64
    }
}

/// Measure footprints of a set of traces on `topo`.
pub fn footprint(traces: &[ThreadTrace], topo: &Topology) -> FootprintReport {
    let mut per_thread = Vec::with_capacity(traces.len());
    let mut io_sets: Vec<HashSet<_>> = vec![HashSet::new(); topo.io_nodes];
    let mut sc_sets: Vec<HashSet<_>> = vec![HashSet::new(); topo.storage_nodes];
    let mut total = 0usize;
    for tr in traces {
        let mut mine = HashSet::new();
        let io = topo.io_node_of_compute(tr.compute_node);
        for b in tr.blocks() {
            mine.insert(b);
            io_sets[io].insert(b);
            sc_sets[topo.storage_node_of_block(b)].insert(b);
        }
        total += tr.len();
        per_thread.push(mine.len());
    }
    FootprintReport {
        per_thread,
        per_io_group: io_sets.iter().map(HashSet::len).collect(),
        per_storage_group: sc_sets.iter().map(HashSet::len).collect(),
        total_requests: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParallelConfig;
    use crate::pass::{run_layout_pass, PassOptions};
    use crate::tracegen::{default_layouts, generate_traces};
    use flo_polyhedral::Program;
    use flo_polyhedral::ProgramBuilder;

    fn tiny_topology() -> Topology {
        let mut t = Topology::tiny();
        t.block_elems = 4;
        t
    }

    /// Column-access program: the case the optimization is built for.
    fn column_program() -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[32, 32]);
        b.nest(&[32, 32]).read(a, &[&[0, 1], &[1, 0]]).done();
        b.build()
    }

    #[test]
    fn optimization_shrinks_footprint() {
        let program = column_program();
        let topo = tiny_topology();
        let opts = PassOptions::default_for(&topo);
        let default_traces =
            generate_traces(&program, &opts.parallel, &default_layouts(&program), &topo);
        let plan = run_layout_pass(&program, &topo, &opts);
        let opt_traces = generate_traces(&program, &opts.parallel, &plan.layouts, &topo);

        let before = footprint(&default_traces, &topo);
        let after = footprint(&opt_traces, &topo);
        assert!(
            after.max_thread_footprint() < before.max_thread_footprint(),
            "optimized footprint {} must shrink below default {}",
            after.max_thread_footprint(),
            before.max_thread_footprint()
        );
        // The headline claim of §2: per-thread data lands in the minimal
        // number of blocks (elements / block size, rounded up).
        let per_thread_elems = 32 * 32 / topo.compute_nodes as i64;
        let minimal = (per_thread_elems as u64).div_ceil(topo.block_elems) as usize;
        assert!(
            after.max_thread_footprint() <= minimal + 1,
            "footprint {} not near-minimal {minimal}",
            after.max_thread_footprint()
        );
    }

    #[test]
    fn footprint_counts_are_consistent() {
        let program = column_program();
        let topo = tiny_topology();
        let cfg = ParallelConfig::default_for(topo.compute_nodes);
        let traces = generate_traces(&program, &cfg, &default_layouts(&program), &topo);
        let fp = footprint(&traces, &topo);
        assert_eq!(fp.per_thread.len(), topo.compute_nodes);
        assert_eq!(fp.per_io_group.len(), topo.io_nodes);
        // Aggregate group footprints bound the per-thread ones.
        let max_thread = fp.max_thread_footprint();
        let max_group = fp.per_io_group.iter().copied().max().unwrap();
        assert!(max_group >= max_thread);
        assert!(fp.total_requests > 0);
        assert!(fp.io_pressure(&topo) > 0.0);
        assert!(fp.storage_pressure(&topo) > 0.0);
    }

    #[test]
    fn empty_traces_empty_report() {
        let topo = tiny_topology();
        let fp = footprint(&[], &topo);
        assert_eq!(fp.max_thread_footprint(), 0);
        assert_eq!(fp.mean_thread_footprint(), 0.0);
    }
}
