//! Parallelization configuration shared by the pass, the trace generator
//! and the baselines.

use crate::error::CoreError;
use flo_parallel::{BlockAssignment, BlockPartition, ThreadMapping};
use flo_polyhedral::LoopNest;

/// How the application's loop nests are parallelized and placed.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Number of application threads (default execution: one per compute
    /// node).
    pub threads: usize,
    /// The user-specified parallelized loop dimension `u` (§3). Nests
    /// shallower than `u + 1` levels fall back to their outermost loop.
    pub u: usize,
    /// Iteration blocks per thread (`x = threads × blocks_per_thread`).
    pub blocks_per_thread: usize,
    /// Block-to-thread assignment (round-robin per §3; the
    /// computation-mapping baseline uses `Blocked`).
    pub assignment: BlockAssignment,
    /// Thread-to-compute-node mapping (Mapping I by default).
    pub mapping: ThreadMapping,
}

impl ParallelConfig {
    /// The paper's default execution for `threads` threads: `u = 0`, four
    /// blocks per thread, round-robin, identity mapping.
    pub fn default_for(threads: usize) -> ParallelConfig {
        ParallelConfig {
            threads,
            u: 0,
            blocks_per_thread: 4,
            assignment: BlockAssignment::RoundRobin,
            mapping: ThreadMapping::identity(threads),
        }
    }

    /// The effective parallel dimension for a nest of the given rank.
    pub fn u_for_rank(&self, rank: usize) -> usize {
        if self.u < rank {
            self.u
        } else {
            0
        }
    }

    /// The iteration-block partition of `nest` under this configuration.
    pub fn partition_of(&self, nest: &LoopNest) -> BlockPartition {
        let u = self.u_for_rank(nest.space.rank());
        BlockPartition::new(
            &nest.space,
            u,
            self.threads * self.blocks_per_thread,
            self.threads,
        )
        .with_assignment(self.assignment)
    }

    /// Check the configuration for degeneracies the pass and trace
    /// generator assume away: a positive thread count, at least one
    /// iteration block per thread, and a thread mapping sized to the
    /// thread count. The bench harness validates every prepared run
    /// through this before simulating.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.threads == 0 {
            return Err(CoreError::InvalidConfig(
                "threads must be positive".to_string(),
            ));
        }
        if self.blocks_per_thread == 0 {
            return Err(CoreError::InvalidConfig(
                "blocks_per_thread must be positive".to_string(),
            ));
        }
        if self.mapping.num_threads() != self.threads {
            return Err(CoreError::InvalidConfig(format!(
                "thread mapping covers {} threads, config has {}",
                self.mapping.num_threads(),
                self.threads
            )));
        }
        Ok(())
    }

    /// Copy with a different thread mapping (Fig. 7(b) sweeps).
    pub fn with_mapping(mut self, mapping: ThreadMapping) -> ParallelConfig {
        assert_eq!(mapping.num_threads(), self.threads, "mapping size mismatch");
        self.mapping = mapping;
        self
    }

    /// Copy with a different block assignment (computation mapping).
    pub fn with_assignment(mut self, assignment: BlockAssignment) -> ParallelConfig {
        self.assignment = assignment;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flo_polyhedral::IterSpace;

    #[test]
    fn default_shape() {
        let cfg = ParallelConfig::default_for(8);
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.u, 0);
        assert!(cfg.mapping.is_identity());
    }

    #[test]
    fn u_falls_back_for_shallow_nests() {
        let mut cfg = ParallelConfig::default_for(4);
        cfg.u = 2;
        assert_eq!(cfg.u_for_rank(3), 2);
        assert_eq!(cfg.u_for_rank(2), 0);
    }

    #[test]
    fn partition_respects_blocks_per_thread() {
        let cfg = ParallelConfig::default_for(4);
        let nest = LoopNest::new(IterSpace::from_extents(&[64, 8]), vec![]);
        let p = cfg.partition_of(&nest);
        assert_eq!(p.num_blocks(), 16);
        assert_eq!(p.num_threads(), 4);
    }

    #[test]
    #[should_panic(expected = "mapping size mismatch")]
    fn mapping_size_checked() {
        let cfg = ParallelConfig::default_for(4);
        let _ = cfg.with_mapping(ThreadMapping::identity(8));
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        ParallelConfig::default_for(4).validate().unwrap();
        let mut cfg = ParallelConfig::default_for(4);
        cfg.threads = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ParallelConfig::default_for(4);
        cfg.blocks_per_thread = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ParallelConfig::default_for(4);
        cfg.mapping = ThreadMapping::identity(8);
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("thread mapping"));
    }
}
