//! The fast trace-emission path: block runs per innermost loop segment.
//!
//! The reference generator evaluates `a = Q·i + q` and a full layout
//! lookup for every dynamic array reference. This module replaces that
//! with incremental evaluation ([`AccessCursor`]) plus one of two
//! emission strategies per nest:
//!
//! * **Run emission** (single-reference nests over dense layouts): the
//!   file offset moves by a *constant stride* per innermost iteration,
//!   so each innermost segment decomposes into a handful of
//!   `(block, count)` runs computed in closed form — `O(blocks touched)`
//!   instead of `O(iterations)`.
//! * **Incremental stepping** (multi-reference nests, or table-backed
//!   hierarchical layouts): one cursor per reference steps a scalar in
//!   lockstep with the iteration odometer — still no matrix product or
//!   layout arithmetic per access, but element-granular so that
//!   cross-reference request coalescing matches the reference generator
//!   bit for bit. (With several references per iteration, consecutive
//!   same-block requests can span *references*, not just iterations, so
//!   whole per-reference segments cannot be emitted en bloc.)
//!
//! Both strategies produce exactly the entry stream of
//! [`generate_traces_reference`](crate::tracegen::generate_traces_reference);
//! the differential test in `tests/` asserts this for the whole workload
//! suite.

use crate::layout::FileLayout;
use flo_polyhedral::{AccessCursor, IterSpace, LoopNest, Program};
use flo_sim::{BlockAddr, ThreadTrace};

/// How one reference's cursor projection turns into a file offset.
enum OffsetMode<'a> {
    /// Projection *is* the offset (dense layout, projected by strides).
    Dense,
    /// Projection is the row-major element index into the layout table.
    Table(&'a [u64]),
}

/// One reference prepared for emission over a sub-box.
struct RefEmitter<'a> {
    cursor: AccessCursor,
    mode: OffsetMode<'a>,
    file: u32,
}

impl RefEmitter<'_> {
    #[inline]
    fn offset(&self) -> u64 {
        let p = self.cursor.projected();
        debug_assert!(p >= 0, "negative projection: reference escapes its array");
        match self.mode {
            OffsetMode::Dense => p as u64,
            OffsetMode::Table(t) => t[p as usize],
        }
    }
}

/// Append thread `t`'s requests for one nest to `trace`.
///
/// Walks the thread's iteration blocks in ownership order (the schedule
/// order of [`ThreadSchedule`](flo_parallel::ThreadSchedule)) and emits
/// every reference's block requests in program order.
pub fn emit_nest(
    program: &Program,
    nest: &LoopNest,
    partition: &flo_parallel::BlockPartition,
    thread: usize,
    layouts: &[FileLayout],
    block_elems: u64,
    trace: &mut ThreadTrace,
) {
    let u = partition.u();
    let n = nest.space.rank();
    for block in partition.blocks_of_thread(thread) {
        // The sub-box with dimension u restricted to this block.
        let mut lower: Vec<i64> = (0..n).map(|k| nest.space.lower(k)).collect();
        let mut upper: Vec<i64> = (0..n).map(|k| nest.space.upper(k)).collect();
        lower[u] = block.lo;
        upper[u] = block.hi;
        let sub = IterSpace::new(lower, upper);

        let mut refs: Vec<RefEmitter<'_>> = nest
            .refs
            .iter()
            .map(|r| {
                let space = &program.array(r.array).space;
                let layout = &layouts[r.array.0];
                let (mode, strides) = match layout {
                    FileLayout::Hierarchical(h) => {
                        // Project onto the row-major element index; the
                        // table finishes the mapping per element.
                        (
                            OffsetMode::Table(&h.table),
                            FileLayout::RowMajor.strides(space),
                        )
                    }
                    dense => (OffsetMode::Dense, dense.strides(space)),
                };
                let strides = strides.expect("dense strides always exist");
                RefEmitter {
                    cursor: AccessCursor::with_projection(&r.access, &sub, &strides),
                    mode,
                    file: r.array.0 as u32,
                }
            })
            .collect();

        match refs.as_mut_slice() {
            [r] if matches!(r.mode, OffsetMode::Dense) => {
                // Single dense reference: whole-segment run emission.
                let stride = r.cursor.innermost_step();
                loop {
                    emit_runs(
                        trace,
                        r.file,
                        r.cursor.projected(),
                        stride,
                        r.cursor.step_count(),
                        block_elems,
                    );
                    if !r.cursor.finish_segment() {
                        break;
                    }
                }
            }
            _ => {
                // Element-granular lockstep (matches cross-reference
                // coalescing exactly).
                loop {
                    for r in refs.iter() {
                        trace.push(BlockAddr::containing(r.file, r.offset(), block_elems));
                    }
                    let mut advanced = false;
                    for r in refs.iter_mut() {
                        advanced = r.cursor.advance().is_some();
                    }
                    if !advanced {
                        break;
                    }
                }
            }
        }
    }
}

/// Emit the `(block, count)` runs of an arithmetic offset sequence
/// `start, start+stride, …` of `len` terms.
fn emit_runs(
    trace: &mut ThreadTrace,
    file: u32,
    start: i64,
    stride: i64,
    len: i64,
    block_elems: u64,
) {
    debug_assert!(
        len > 0 && start >= 0,
        "emit_runs: empty segment or negative offset"
    );
    let b = block_elems as i64;
    if stride == 0 {
        trace.push_run(
            BlockAddr::containing(file, start as u64, block_elems),
            len as u32,
        );
        return;
    }
    let mut off = start;
    let mut remaining = len;
    while remaining > 0 {
        let blk = off / b;
        // Steps until the offset leaves [blk·b, (blk+1)·b), current one
        // included.
        let steps = if stride > 0 {
            ((blk + 1) * b - 1 - off) / stride + 1
        } else {
            (off - blk * b) / -stride + 1
        };
        let take = steps.min(remaining);
        trace.push_run(BlockAddr::new(file, blk as u64), take as u32);
        off += take * stride;
        remaining -= take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(start: i64, stride: i64, len: i64, block_elems: u64) -> Vec<(u64, u32)> {
        let mut t = ThreadTrace::new(0, 0);
        emit_runs(&mut t, 0, start, stride, len, block_elems);
        t.entries.iter().map(|e| (e.block.index, e.count)).collect()
    }

    fn reference(start: i64, stride: i64, len: i64, block_elems: u64) -> Vec<(u64, u32)> {
        let mut t = ThreadTrace::new(0, 0);
        for k in 0..len {
            let off = (start + k * stride) as u64;
            t.push(BlockAddr::containing(0, off, block_elems));
        }
        t.entries.iter().map(|e| (e.block.index, e.count)).collect()
    }

    #[test]
    fn unit_stride_runs() {
        assert_eq!(collect(0, 1, 10, 4), vec![(0, 4), (1, 4), (2, 2)]);
        assert_eq!(collect(3, 1, 3, 4), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn zero_stride_collapses() {
        assert_eq!(collect(9, 0, 100, 4), vec![(2, 100)]);
    }

    #[test]
    fn runs_match_elementwise_reference() {
        for &(start, stride, len, b) in &[
            (0i64, 1i64, 17i64, 4u64),
            (5, 3, 11, 4),
            (100, -1, 30, 8),
            (63, -7, 10, 16),
            (2, 5, 1, 4),
            (7, 64, 9, 16),
        ] {
            assert_eq!(
                collect(start, stride, len, b),
                reference(start, stride, len, b),
                "start={start} stride={stride} len={len} block={b}"
            );
        }
    }
}
