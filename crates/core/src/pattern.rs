//! Step II pattern arithmetic: hierarchical layout patterns and chunk
//! addressing (§4.2, Algorithm 1 lines 10–14).
//!
//! The file is covered by a repeating *layout pattern* built bottom-up
//! from the cache hierarchy:
//!
//! * each layer-1 cache's `l` threads own one *chunk* of `c = S₁/l`
//!   elements inside a layer-1 pattern of size `P₁ = c·l`;
//! * a layer-`i+1` pattern consists of `N_{i+1}` contiguous segments, one
//!   per child cache group, each holding `t_i = S_{i+1}/(N_{i+1}·P_i)`
//!   repetitions of that group's layer-`i` pattern;
//! * the file repeats the top-layer pattern (one segment per top cache)
//!   with period `k_top · P_top`.
//!
//! The starting address of thread `t`'s `x`-th chunk is then
//! `base_t + Σ_{i<n} ((x/(t₁⋯t_{i-1})) mod t_i)·P_i + (x/(t₁⋯t_{n-1}))·period`,
//! which is the paper's formula with the pattern sizes `P_i` in place of
//! the raw capacities `S_i` — identical when capacities divide evenly, and
//! still injective when they do not (capacities are rounded down to whole
//! chunks/segments; the paper implicitly assumes even division).

use crate::target::HierSpec;

/// Closed-form chunk addressing for one hierarchy specification.
#[derive(Clone, Debug)]
pub struct ChunkAddresser {
    chunk_elems: u64,
    /// Pattern sizes `P_i`, bottom-up.
    pattern_sizes: Vec<u64>,
    /// Repetition counts `t_i` (length `levels - 1`).
    reps: Vec<u64>,
    /// File-level pattern period.
    period: u64,
    /// Per-thread base offsets.
    base: Vec<u64>,
}

impl ChunkAddresser {
    /// Derive the pattern geometry from a hierarchy specification, with
    /// the chunk size given by the thread's cache share (`S₁/l`).
    pub fn new(spec: &HierSpec) -> ChunkAddresser {
        ChunkAddresser::for_data(spec, u64::MAX)
    }

    /// Derive the pattern geometry for an array whose threads own
    /// `per_thread_elems` elements each. The chunk size is the thread's
    /// cache share capped at the thread's actual data (rounded up to whole
    /// blocks) — the paper's `S₁/l` assumes arrays much larger than the
    /// caches; for smaller arrays an uncapped chunk would scatter the few
    /// used blocks across a mostly-empty pattern.
    pub fn for_data(spec: &HierSpec, per_thread_elems: u64) -> ChunkAddresser {
        let n = spec.levels.len();
        assert!(n >= 1, "ChunkAddresser: empty hierarchy");
        let l = spec.threads_per_group() as u64;
        // Top-down effective capacities ("built in a top-down fashion",
        // §4.2): a layer's pattern cannot exceed its share of the parent
        // segment. With the paper's own default parameters the storage
        // caches are smaller than the combined I/O caches beneath them, so
        // the I/O-level patterns shrink to S₂/N₂ when both layers are
        // targeted.
        let mut eff: Vec<u64> = spec.levels.iter().map(|lv| lv.capacity_elems).collect();
        for i in (0..n.saturating_sub(1)).rev() {
            let fan_in = (spec.levels[i].caches / spec.levels[i + 1].caches) as u64;
            eff[i] = eff[i].min(eff[i + 1] / fan_in.max(1));
        }
        let cap0 = eff[0];
        let block = spec.block_elems;
        // Chunk size: the thread's share of its layer-1 cache, rounded
        // down to whole blocks (at least one block), capped at the
        // thread's own data size (rounded up to whole blocks).
        let share = ((cap0 / l) / block * block).max(block);
        let data_cap = per_thread_elems
            .saturating_add(block - 1)
            .checked_div(block)
            .map(|b| b.saturating_mul(block))
            .unwrap_or(u64::MAX)
            .max(block);
        let chunk_elems = share.min(data_cap);
        // Chunks a thread actually fills; repetition counts beyond this
        // would only spread the file with unused slots.
        let chunks_per_thread = per_thread_elems
            .saturating_add(chunk_elems - 1)
            .checked_div(chunk_elems)
            .unwrap_or(u64::MAX)
            .max(1);
        let mut pattern_sizes = vec![chunk_elems * l];
        let mut reps = Vec::new();
        let mut slots = 1u64;
        for i in 1..n {
            let fan_in = spec.levels[i - 1].caches / spec.levels[i].caches;
            assert!(
                spec.levels[i - 1]
                    .caches
                    .is_multiple_of(spec.levels[i].caches),
                "hierarchy fan-in must be uniform"
            );
            let prev = pattern_sizes[i - 1];
            let t_raw = (eff[i] / (fan_in as u64 * prev)).max(1);
            // Cap: no more chunk slots per period than the thread fills.
            let t_i = t_raw.min((chunks_per_thread / slots).max(1));
            slots = slots.saturating_mul(t_i);
            reps.push(t_i);
            pattern_sizes.push(t_i * prev * fan_in as u64);
        }
        let k_top = spec.levels[n - 1].caches as u64;
        let period = pattern_sizes[n - 1] * k_top;
        // Per-thread bases from the thread's position chain in the tree.
        let base = (0..spec.threads)
            .map(|t| {
                let mut addr = spec.rank_in_group(t) as u64 * chunk_elems;
                let mut g = spec.group_of_thread[t];
                for i in 1..n {
                    let fan_in = spec.levels[i - 1].caches / spec.levels[i].caches;
                    let w = (g % fan_in) as u64;
                    g /= fan_in;
                    // Segment of a child group inside the layer-(i+1)
                    // pattern: P_{i+1} / N_{i+1} = t_i · P_i.
                    addr += w * reps[i - 1] * pattern_sizes[i - 1];
                }
                addr += g as u64 * pattern_sizes[n - 1];
                addr
            })
            .collect();
        ChunkAddresser {
            chunk_elems,
            pattern_sizes,
            reps,
            period,
            base,
        }
    }

    /// Elements per chunk (`c`).
    pub fn chunk_elems(&self) -> u64 {
        self.chunk_elems
    }

    /// File-level pattern period in elements.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Pattern sizes `P_i`, bottom-up (exposed for diagnostics).
    pub fn pattern_sizes(&self) -> &[u64] {
        &self.pattern_sizes
    }

    /// Starting file offset of the `x`-th chunk of `thread`
    /// (Algorithm 1 lines 10–14).
    pub fn chunk_start(&self, thread: usize, x: u64) -> u64 {
        let mut addr = self.base[thread];
        let mut q = x;
        for (t_i, p_i) in self.reps.iter().zip(&self.pattern_sizes) {
            addr += (q % t_i) * p_i;
            q /= t_i;
        }
        addr + q * self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::{HierSpec, TargetLayers};
    use flo_parallel::ThreadMapping;
    use flo_sim::Topology;
    use std::collections::HashSet;

    /// The paper's Fig. 6(c) architecture: 4 threads, 2 I/O caches (2
    /// threads each), 1 storage cache, S₁ < S₂.
    fn fig6_spec() -> HierSpec {
        HierSpec {
            levels: vec![
                crate::target::HierLevel {
                    caches: 2,
                    capacity_elems: 8,
                },
                crate::target::HierLevel {
                    caches: 1,
                    capacity_elems: 32,
                },
            ],
            threads: 4,
            group_of_thread: vec![0, 0, 1, 1],
            block_elems: 1,
        }
    }

    #[test]
    fn fig6_pattern_matches_paper() {
        // S₁ = 8, l = 2 → c = 4, P₁ = 8. N₂ = 2, S₂ = 32 → t₁ = 2,
        // P₂ = 32, period = 32.
        let a = ChunkAddresser::new(&fig6_spec());
        assert_eq!(a.chunk_elems(), 4);
        assert_eq!(a.pattern_sizes(), &[8, 32]);
        assert_eq!(a.period(), 32);
        // SC2 pattern ⟨P1,P2,P1,P2,P3,P4,P3,P4⟩ in chunks of 4:
        // P1's chunks: 0 and 8 (two repetitions of ⟨P1,P2⟩), then next
        // period at 32.
        assert_eq!(a.chunk_start(0, 0), 0);
        assert_eq!(a.chunk_start(0, 1), 8);
        assert_eq!(a.chunk_start(0, 2), 32);
        // P2 is offset by one chunk.
        assert_eq!(a.chunk_start(1, 0), 4);
        assert_eq!(a.chunk_start(1, 1), 12);
        // P3 opens the second half of the SC2 pattern (b = S₂/2 = 16).
        assert_eq!(a.chunk_start(2, 0), 16);
        assert_eq!(a.chunk_start(2, 1), 24);
        assert_eq!(a.chunk_start(3, 0), 20);
        assert_eq!(a.chunk_start(3, 1), 28);
    }

    #[test]
    fn paper_formula_b1_b2() {
        // Cross-check against the paper's b₁/b₂ formulas: t₁ = S₂/(2S₁),
        // b₁ = (x mod t₁)·S₁, b₂ = (x div t₁)·S₂.
        let a = ChunkAddresser::new(&fig6_spec());
        let (s1, s2, t1) = (8u64, 32u64, 2u64);
        for thread in 0..4usize {
            let base = a.chunk_start(thread, 0);
            for x in 0..6u64 {
                let b1 = (x % t1) * s1;
                let b2 = (x / t1) * s2;
                assert_eq!(
                    a.chunk_start(thread, x),
                    base + b1 + b2,
                    "thread {thread}, chunk {x}"
                );
            }
        }
    }

    #[test]
    fn chunks_never_collide() {
        let a = ChunkAddresser::new(&fig6_spec());
        let mut seen: HashSet<u64> = HashSet::new();
        for t in 0..4usize {
            for x in 0..16u64 {
                let start = a.chunk_start(t, x);
                for e in start..start + a.chunk_elems() {
                    assert!(
                        seen.insert(e),
                        "collision at element {e} (thread {t}, chunk {x})"
                    );
                }
            }
        }
    }

    #[test]
    fn chunks_tile_the_file_densely() {
        // With evenly dividing capacities the pattern leaves no holes.
        let a = ChunkAddresser::new(&fig6_spec());
        let mut covered: HashSet<u64> = HashSet::new();
        for t in 0..4usize {
            for x in 0..8u64 {
                let start = a.chunk_start(t, x);
                covered.extend(start..start + a.chunk_elems());
            }
        }
        // 4 threads × 8 chunks × 4 elements = 128 contiguous elements.
        assert_eq!(covered.len(), 128);
        assert_eq!(*covered.iter().max().unwrap(), 127);
    }

    #[test]
    fn real_topology_injective() {
        let topo = Topology::paper_default();
        let mapping = ThreadMapping::identity(64);
        for target in TargetLayers::all() {
            let spec = HierSpec::build(&topo, &mapping, 64, target);
            let a = ChunkAddresser::new(&spec);
            let mut seen: HashSet<u64> = HashSet::new();
            for t in 0..64usize {
                for x in 0..8u64 {
                    let s = a.chunk_start(t, x);
                    assert!(
                        seen.insert(s),
                        "chunk start collision under {target:?} (thread {t}, x {x})"
                    );
                }
            }
        }
    }

    #[test]
    fn chunk_size_is_block_multiple() {
        let topo = Topology::paper_default();
        let mapping = ThreadMapping::identity(64);
        let spec = HierSpec::build(&topo, &mapping, 64, TargetLayers::Both);
        let a = ChunkAddresser::new(&spec);
        assert_eq!(a.chunk_elems() % topo.block_elems, 0);
        assert!(a.chunk_elems() >= topo.block_elems);
    }

    #[test]
    fn single_level_hierarchy() {
        let spec = HierSpec {
            levels: vec![crate::target::HierLevel {
                caches: 2,
                capacity_elems: 8,
            }],
            threads: 4,
            group_of_thread: vec![0, 0, 1, 1],
            block_elems: 1,
        };
        let a = ChunkAddresser::new(&spec);
        // P₁ = 8, 2 top caches → period 16.
        assert_eq!(a.period(), 16);
        assert_eq!(a.chunk_start(0, 0), 0);
        assert_eq!(a.chunk_start(1, 0), 4);
        assert_eq!(a.chunk_start(2, 0), 8);
        assert_eq!(a.chunk_start(3, 0), 12);
        assert_eq!(a.chunk_start(0, 1), 16);
    }

    #[test]
    fn undersized_lower_cache_clamps_reps() {
        // Storage cache smaller than the combined I/O patterns: t must
        // clamp to 1 and addressing stays injective.
        let spec = HierSpec {
            levels: vec![
                crate::target::HierLevel {
                    caches: 2,
                    capacity_elems: 8,
                },
                crate::target::HierLevel {
                    caches: 1,
                    capacity_elems: 4,
                },
            ],
            threads: 4,
            group_of_thread: vec![0, 0, 1, 1],
            block_elems: 1,
        };
        let a = ChunkAddresser::new(&spec);
        let mut seen: HashSet<u64> = HashSet::new();
        for t in 0..4usize {
            for x in 0..8u64 {
                let start = a.chunk_start(t, x);
                for e in start..start + a.chunk_elems() {
                    assert!(seen.insert(e), "collision at {e}");
                }
            }
        }
    }
}
