//! # flo-core
//!
//! The paper's contribution: *compiler-directed file layout optimization
//! for hierarchical storage systems* (Ding, Zhang, Kandemir & Son, SC'12).
//!
//! Given a parallelized affine program (from [`flo_polyhedral`] /
//! [`flo_parallel`]) and a description of the storage cache hierarchy
//! (from [`flo_sim::Topology`]), the pass determines a file layout for each
//! disk-resident array such that the data elements accessed by each thread
//! are stored in consecutive file locations and the interleaving of
//! per-thread chunks matches the cache hierarchy, minimizing each thread's
//! block footprint at every cache layer.
//!
//! The pipeline (§4 of the paper, Fig. 4):
//!
//! 1. **Step I — array partitioning** ([`partition`]): find a unimodular
//!    data transformation `D` with `h_A · D · Q · E_u = 0` so that the data
//!    touched by different threads separates along one dimension of the
//!    transformed data space. Solved by integer Gaussian elimination with
//!    the weighted multi-reference strategy of Eq. (4)–(5).
//! 2. **Step II — storage-hierarchy-aware layout** ([`pattern`],
//!    [`algorithm1`]): build the thread-interleaved layout pattern
//!    top-down over the cache hierarchy and assign every element a file
//!    address via the chunk arithmetic of Algorithm 1.
//!
//! The result is a [`layout::FileLayout`] per array — an exact bijection
//! from array elements to file offsets — plus diagnostics
//! ([`pass::LayoutPlan`]). Prior-work baselines used in the paper's
//! comparison (Fig. 7(g)) are under [`baseline`].

pub mod algorithm1;
pub mod baseline;
pub mod canonical;
pub mod config;
pub mod cost;
pub mod emit;
pub mod error;
pub mod estimate;
pub mod layout;
pub mod partition;
pub mod pass;
pub mod pattern;
pub mod target;
pub mod template;
pub mod tracegen;

pub use config::ParallelConfig;
pub use error::CoreError;
pub use layout::FileLayout;
pub use partition::{partition_array, PartitionOutcome, Partitioning};
pub use pass::{run_layout_pass, ArrayReport, LayoutPlan, PassOptions};
pub use pattern::ChunkAddresser;
pub use target::{HierLevel, HierSpec, TargetLayers};
pub use template::{template_spec, HierTemplate};
pub use tracegen::{generate_traces, generate_traces_reference};
