//! Which cache layers the layout targets (Fig. 7(f)) and the hierarchy
//! abstraction Step II consumes.
//!
//! Step II views the storage system as a tree: threads → layer-1 caches →
//! layer-2 caches → …. [`HierSpec`] flattens a [`flo_sim::Topology`] plus a
//! thread mapping into that tree, for the layer subset selected by
//! [`TargetLayers`].

use flo_parallel::ThreadMapping;
use flo_sim::Topology;

/// Layer subset the optimization targets (the Fig. 7(f) experiment).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TargetLayers {
    /// Only the I/O-node caches.
    IoOnly,
    /// Only the storage-node caches.
    StorageOnly,
    /// The full hierarchy (the paper's main configuration).
    Both,
}

impl TargetLayers {
    /// All variants in Fig. 7(f) order.
    pub fn all() -> [TargetLayers; 3] {
        [
            TargetLayers::IoOnly,
            TargetLayers::StorageOnly,
            TargetLayers::Both,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TargetLayers::IoOnly => "I/O nodes only",
            TargetLayers::StorageOnly => "storage nodes only",
            TargetLayers::Both => "both layers",
        }
    }
}

/// One cache layer of the hierarchy tree, bottom-up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierLevel {
    /// Number of caches at this layer.
    pub caches: usize,
    /// Capacity of each cache in array elements.
    pub capacity_elems: u64,
}

/// The hierarchy tree Step II builds layout patterns for.
#[derive(Clone, Debug)]
pub struct HierSpec {
    /// Cache layers from the compute side down to the disks.
    pub levels: Vec<HierLevel>,
    /// Number of application threads.
    pub threads: usize,
    /// `group_of_thread[t]` = index of the layer-0 cache thread `t` sits
    /// behind.
    pub group_of_thread: Vec<usize>,
    /// Data-block size in elements (chunk sizes are rounded to blocks).
    pub block_elems: u64,
}

impl HierSpec {
    /// Build the tree for `threads` threads mapped by `mapping` onto
    /// `topo`, targeting `target`.
    pub fn build(
        topo: &Topology,
        mapping: &ThreadMapping,
        threads: usize,
        target: TargetLayers,
    ) -> HierSpec {
        assert_eq!(
            mapping.num_threads(),
            threads,
            "HierSpec: mapping size mismatch"
        );
        assert!(
            threads <= topo.compute_nodes,
            "more threads than compute nodes"
        );
        let io_level = HierLevel {
            caches: topo.io_nodes,
            capacity_elems: topo.io_cache_blocks as u64 * topo.block_elems,
        };
        // All I/O nodes reach all storage nodes via striping; for the tree
        // abstraction, I/O nodes group contiguously onto storage caches
        // (see DESIGN.md §4).
        let storage_groups = if topo.io_nodes.is_multiple_of(topo.storage_nodes) {
            topo.storage_nodes
        } else {
            1
        };
        let storage_level = HierLevel {
            caches: storage_groups,
            capacity_elems: topo.storage_cache_blocks as u64 * topo.block_elems,
        };
        let io_group = |t: usize| -> usize { topo.io_node_of_compute(mapping.node_of(t)) };
        let (levels, group_of_thread): (Vec<HierLevel>, Vec<usize>) = match target {
            TargetLayers::IoOnly => (vec![io_level], (0..threads).map(io_group).collect()),
            TargetLayers::StorageOnly => {
                let per = topo.io_nodes / storage_groups;
                (
                    vec![storage_level],
                    (0..threads).map(|t| io_group(t) / per).collect(),
                )
            }
            TargetLayers::Both => (
                vec![io_level, storage_level],
                (0..threads).map(io_group).collect(),
            ),
        };
        HierSpec {
            levels,
            threads,
            group_of_thread,
            block_elems: topo.block_elems,
        }
    }

    /// Number of threads sharing each layer-0 cache (uniform by
    /// construction for bijective mappings on divisible topologies).
    pub fn threads_per_group(&self) -> usize {
        let groups = self.levels[0].caches;
        self.threads.div_ceil(groups)
    }

    /// The position of thread `t` among the threads of its layer-0 group
    /// (ordered by thread id) — the `w₁` of the chunk-address formula.
    pub fn rank_in_group(&self, t: usize) -> usize {
        let g = self.group_of_thread[t];
        (0..t).filter(|&s| self.group_of_thread[s] == g).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(target: TargetLayers) -> HierSpec {
        let topo = Topology::paper_default();
        let mapping = ThreadMapping::identity(64);
        HierSpec::build(&topo, &mapping, 64, target)
    }

    #[test]
    fn both_layers_shape() {
        let s = spec(TargetLayers::Both);
        assert_eq!(s.levels.len(), 2);
        assert_eq!(s.levels[0].caches, 16);
        assert_eq!(s.levels[1].caches, 4);
        assert_eq!(s.threads_per_group(), 4);
        // Thread 5 runs on node 5 → I/O node 1.
        assert_eq!(s.group_of_thread[5], 1);
        assert_eq!(s.rank_in_group(5), 1);
        assert_eq!(s.rank_in_group(4), 0);
    }

    #[test]
    fn io_only_shape() {
        let s = spec(TargetLayers::IoOnly);
        assert_eq!(s.levels.len(), 1);
        assert_eq!(s.levels[0].caches, 16);
    }

    #[test]
    fn storage_only_shape() {
        let s = spec(TargetLayers::StorageOnly);
        assert_eq!(s.levels.len(), 1);
        assert_eq!(s.levels[0].caches, 4);
        assert_eq!(s.threads_per_group(), 16);
        // Threads 0..16 sit behind I/O nodes 0..4 → storage group 0.
        assert_eq!(s.group_of_thread[15], 0);
        assert_eq!(s.group_of_thread[16], 1);
    }

    #[test]
    fn permuted_mapping_regroups_threads() {
        let topo = Topology::paper_default();
        let mapping = ThreadMapping::permutation(64, 2);
        let s = HierSpec::build(&topo, &mapping, 64, TargetLayers::Both);
        // Every group still has exactly 4 threads (bijection).
        let mut counts = vec![0usize; 16];
        for &g in &s.group_of_thread {
            counts[g] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4), "uneven groups: {counts:?}");
    }

    #[test]
    fn capacity_in_elements() {
        let s = spec(TargetLayers::Both);
        let topo = Topology::paper_default();
        assert_eq!(
            s.levels[0].capacity_elems,
            topo.io_cache_blocks as u64 * topo.block_elems
        );
    }
}
