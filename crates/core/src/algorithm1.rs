//! Algorithm 1: constructing the inter-node file layout table.
//!
//! After Step I, the transformed coordinate `s = d·a` of every element
//! determines which thread owns it: the satisfied primary reference gives
//! `s = α·i_u + β`, so the iteration block containing
//! `i_u = ⌊(s − β)/α⌋` (clamped to the iteration range) owns data
//! hyperplane `s`. The elements of each thread are enumerated in
//! increasing-`s` order (lexicographic within a hyperplane) and packed
//! into consecutive chunks whose starting addresses come from the
//! hierarchy-aware [`ChunkAddresser`] — exactly the element-wise address
//! assignment loop of the paper's Algorithm 1.
//!
//! The construction runs in O(elements + s-range) time and is performed
//! once per array at compile time (the paper reports a ~36% compile-time
//! increase for the same reason).

use crate::layout::HierLayout;
use crate::pattern::ChunkAddresser;
use flo_parallel::{BlockPartition, ThreadSchedule};
use flo_polyhedral::{AffineAccess, DataSpace, IterSpace};

/// The affine relation `s = α·i_u + β` between the parallel loop and the
/// transformed data coordinate of the primary reference.
#[derive(Clone, Copy, Debug)]
pub struct SMapping {
    /// `d · Q · e_u` of the primary reference (positive by Step I's
    /// normalization).
    pub alpha: i64,
    /// `d · q` (transformed offset) of the primary reference.
    pub beta: i64,
}

fn floor_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

/// Inclusive range of `s = d·a` over the data space (interval arithmetic).
fn s_range(space: &DataSpace, d_row: &[i64]) -> (i64, i64) {
    let mut lo = 0i64;
    let mut hi = 0i64;
    for (k, &dk) in d_row.iter().enumerate() {
        let span = dk * (space.extent(k) - 1);
        lo += span.min(0);
        hi += span.max(0);
    }
    (lo, hi)
}

/// Walk all elements in row-major order, calling `f(element_index, s)`.
fn walk_elements(space: &DataSpace, d_row: &[i64], mut f: impl FnMut(usize, i64)) {
    let m = space.rank();
    let total = space.num_elements() as usize;
    let mut a = vec![0i64; m];
    let mut s = 0i64;
    // Precompute the s-decrement of resetting dimension j from its max.
    let reset: Vec<i64> = (0..m).map(|j| d_row[j] * (space.extent(j) - 1)).collect();
    for e in 0..total {
        f(e, s);
        // Odometer increment with incremental s update.
        for k in (0..m).rev() {
            a[k] += 1;
            if a[k] < space.extent(k) {
                s += d_row[k];
                break;
            }
            a[k] = 0;
            s -= reset[k];
        }
    }
}

/// The primary nest's references, used for first-touch ordering.
#[derive(Clone, Debug)]
pub struct PrimaryRef<'a> {
    /// The iteration space of the nest containing the primary reference.
    pub nest_space: &'a IterSpace,
    /// The index functions of every satisfied reference to the array in
    /// that nest, in program order (the primary one plus e.g. its stencil
    /// neighbours). Walking all of them keeps boundary elements adjacent
    /// to the rows that use them.
    pub accesses: Vec<&'a AffineAccess>,
}

const UNASSIGNED: u64 = u64::MAX;

/// Build the hierarchical layout table for one array.
///
/// * `space` — the array's data space;
/// * `d_row` — Step I's partitioning row `d`;
/// * `smap` — the `s = α·i_u + β` relation of the primary reference;
/// * `partition` — the iteration-block partition of the primary nest
///   (supplies block widths and the round-robin block→thread ownership);
/// * `addr` — the hierarchy-aware chunk addresser of Step II;
/// * `primary` — when present, each thread's elements are stored in
///   *first-touch order*: the order the thread's rewritten primary
///   reference walks them at run time. This is what makes the thread's
///   dynamic access stream contiguous in the file (the whole point of the
///   optimization); elements the primary reference never touches are
///   appended afterwards in hyperplane/lexicographic order.
pub fn build_hier_layout(
    space: &DataSpace,
    d_row: &[i64],
    smap: SMapping,
    partition: &BlockPartition,
    addr: &ChunkAddresser,
    primary: Option<PrimaryRef<'_>>,
) -> HierLayout {
    assert_eq!(d_row.len(), space.rank(), "d rank mismatch");
    assert!(smap.alpha > 0, "alpha must be positive (Step I normalizes)");
    let total = space.num_elements() as usize;
    assert!(
        total > 0 && total < u32::MAX as usize,
        "array too large for table layout"
    );
    let (s_lo, s_hi) = s_range(space, d_row);
    let range = (s_hi - s_lo + 1) as usize;

    let threads = partition.num_threads();
    let chunk = addr.chunk_elems();
    let mut cursor: Vec<(u64, u64, u64)> = vec![(0, 0, 0); threads]; // (x, fill, base)
    let mut table = vec![UNASSIGNED; total];
    let mut max_off = 0u64;
    let mut assign = |t: usize, elem: usize, table: &mut [u64], cursor: &mut [(u64, u64, u64)]| {
        let cur = &mut cursor[t];
        if cur.1 == 0 {
            cur.2 = addr.chunk_start(t, cur.0);
        }
        let off = cur.2 + cur.1;
        table[elem] = off;
        max_off = max_off.max(off);
        cur.1 += 1;
        if cur.1 == chunk {
            cur.0 += 1;
            cur.1 = 0;
        }
    };

    // Phase 1: first-touch assignment along each thread's schedule of the
    // primary reference.
    if let Some(p) = &primary {
        let mut elem = vec![0i64; space.rank()];
        for t in 0..threads {
            let sched = ThreadSchedule::new(p.nest_space, partition, t);
            for i in sched.iterations() {
                for access in &p.accesses {
                    access.eval_into(&i, &mut elem);
                    debug_assert!(space.contains(&elem));
                    let e = space.linearize(&elem) as usize;
                    if table[e] == UNASSIGNED {
                        assign(t, e, &mut table, &mut cursor);
                    }
                }
            }
        }
    }

    // Phase 2: remaining elements (untouched by the primary reference) go
    // to the thread owning their hyperplane, in (s, lexicographic) order.
    // Counting sort of elements by s (stable → lexicographic within s).
    let mut counts = vec![0u32; range];
    walk_elements(space, d_row, |_, s| counts[(s - s_lo) as usize] += 1);
    let mut starts = vec![0u32; range + 1];
    for i in 0..range {
        starts[i + 1] = starts[i] + counts[i];
    }
    let mut fill = starts.clone();
    let mut order = vec![0u32; total];
    walk_elements(space, d_row, |e, s| {
        let slot = &mut fill[(s - s_lo) as usize];
        order[*slot as usize] = e as u32;
        *slot += 1;
    });

    // Iteration range along u, for clamping.
    let iter_lo = partition.block(0).lo;
    let iter_hi = partition.block(partition.num_blocks() - 1).hi;

    for idx in 0..range {
        let (b, e) = (starts[idx] as usize, starts[idx + 1] as usize);
        if b == e {
            continue;
        }
        let s = s_lo + idx as i64;
        // Owner thread of data hyperplane s.
        let iu = floor_div(s - smap.beta, smap.alpha).clamp(iter_lo, iter_hi - 1);
        let block = partition.block_of_coord(iu);
        let t = partition.thread_of_block(block);
        for &elem in &order[b..e] {
            if table[elem as usize] == UNASSIGNED {
                assign(t, elem as usize, &mut table, &mut cursor);
            }
        }
    }
    debug_assert!(table.iter().all(|&x| x != UNASSIGNED));
    HierLayout {
        table,
        file_elems: max_off + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::{HierLevel, HierSpec};
    use flo_polyhedral::IterSpace;
    use std::collections::HashSet;

    /// 4 threads behind 2 I/O caches + 1 storage cache, tiny capacities.
    fn addresser(block_elems: u64, cap1: u64, cap2: u64) -> ChunkAddresser {
        ChunkAddresser::new(&HierSpec {
            levels: vec![
                HierLevel {
                    caches: 2,
                    capacity_elems: cap1,
                },
                HierLevel {
                    caches: 1,
                    capacity_elems: cap2,
                },
            ],
            threads: 4,
            group_of_thread: vec![0, 0, 1, 1],
            block_elems,
        })
    }

    /// Row-partitioned 16×8 array: d = (1, 0), s = i_u (α = 1, β = 0),
    /// 4 blocks of 4 rows round-robin over 4 threads.
    fn row_case() -> (DataSpace, Vec<i64>, BlockPartition) {
        let space = DataSpace::new(vec![16, 8]);
        let iter = IterSpace::from_extents(&[16, 8]);
        let partition = BlockPartition::new(&iter, 0, 4, 4);
        (space, vec![1, 0], partition)
    }

    #[test]
    fn table_is_injective() {
        let (space, d, partition) = row_case();
        let addr = addresser(4, 16, 64);
        let layout = build_hier_layout(
            &space,
            &d,
            SMapping { alpha: 1, beta: 0 },
            &partition,
            &addr,
            None,
        );
        let set: HashSet<u64> = layout.table.iter().copied().collect();
        assert_eq!(set.len(), layout.table.len(), "layout must be injective");
        assert_eq!(layout.file_elems, *layout.table.iter().max().unwrap() + 1);
    }

    #[test]
    fn thread_elements_are_chunk_contiguous() {
        let (space, d, partition) = row_case();
        let addr = addresser(4, 16, 64);
        let layout = build_hier_layout(
            &space,
            &d,
            SMapping { alpha: 1, beta: 0 },
            &partition,
            &addr,
            None,
        );
        // Thread 0 owns rows 0..4 (block 0). Its 32 elements must occupy
        // whole chunks: offsets grouped into runs of chunk_elems = 8.
        let mut offsets: Vec<u64> = (0..4)
            .flat_map(|r| (0..8).map(move |c| (r, c)))
            .map(|(r, c)| layout.table[(r * 8 + c) as usize])
            .collect();
        offsets.sort_unstable();
        let chunk = addr.chunk_elems();
        for run in offsets.chunks(chunk as usize) {
            assert_eq!(run[0] % chunk, 0, "chunk must start block-aligned");
            for (j, &o) in run.iter().enumerate() {
                assert_eq!(o, run[0] + j as u64, "chunk not contiguous");
            }
        }
    }

    #[test]
    fn lexicographic_order_within_thread() {
        let (space, d, partition) = row_case();
        let addr = addresser(4, 16, 64);
        let layout = build_hier_layout(
            &space,
            &d,
            SMapping { alpha: 1, beta: 0 },
            &partition,
            &addr,
            None,
        );
        // Within one row (single s), file offsets increase with the column.
        for r in 0..16u64 {
            for c in 0..7u64 {
                let a = layout.table[(r * 8 + c) as usize];
                let b = layout.table[(r * 8 + c + 1) as usize];
                assert!(b > a, "row {r} col {c}: order violated");
            }
        }
    }

    #[test]
    fn column_partitioned_layout() {
        // d = (0, 1): threads own column slabs (the transposed case that
        // row-major layouts serve poorly).
        let space = DataSpace::new(vec![8, 16]);
        let iter = IterSpace::from_extents(&[16, 8]);
        let partition = BlockPartition::new(&iter, 0, 4, 4);
        let addr = addresser(4, 16, 64);
        let layout = build_hier_layout(
            &space,
            &[0, 1],
            SMapping { alpha: 1, beta: 0 },
            &partition,
            &addr,
            None,
        );
        let set: HashSet<u64> = layout.table.iter().copied().collect();
        assert_eq!(set.len(), 128);
        // Thread 0 owns columns 0..4; its elements (8 rows × 4 cols = 32)
        // must sit in the thread-0 chunk slots: 0..8, 16..24, 64..72, ...
        let col0: Vec<u64> = (0..8).map(|r| layout.table[(r * 16) as usize]).collect();
        for &o in &col0 {
            // chunk slots of thread 0 start at chunk_start(0, x) ∈ {0, 16, 64, 80, ...}
            let within_chunk = o % 8;
            let chunk_base = o - within_chunk;
            assert_eq!(
                addr.chunk_start(0, (chunk_base / 16) % 2 + 2 * (chunk_base / 64)),
                chunk_base
            );
        }
    }

    #[test]
    fn negative_d_entries_handled() {
        // d = (1, -1): diagonal partitioning with negative s values.
        let space = DataSpace::new(vec![8, 8]);
        let iter = IterSpace::from_extents(&[8, 8]);
        let partition = BlockPartition::new(&iter, 0, 4, 4);
        let addr = addresser(4, 16, 64);
        let layout = build_hier_layout(
            &space,
            &[1, -1],
            SMapping { alpha: 1, beta: 0 },
            &partition,
            &addr,
            None,
        );
        let set: HashSet<u64> = layout.table.iter().copied().collect();
        assert_eq!(set.len(), 64, "injective despite negative s");
    }

    #[test]
    fn strided_alpha() {
        // α = 2: only every other hyperplane is touched by iterations; the
        // in-between hyperplanes are owned by the nearest block below.
        let space = DataSpace::new(vec![16, 4]);
        let iter = IterSpace::from_extents(&[8, 4]);
        let partition = BlockPartition::new(&iter, 0, 4, 4);
        let addr = addresser(4, 16, 64);
        let layout = build_hier_layout(
            &space,
            &[1, 0],
            SMapping { alpha: 2, beta: 0 },
            &partition,
            &addr,
            None,
        );
        let set: HashSet<u64> = layout.table.iter().copied().collect();
        assert_eq!(set.len(), 64);
        // Rows 0 and 1 both map to i_u = 0 → thread 0's chunks.
        let r0 = layout.table[0];
        let r1 = layout.table[4];
        assert!(r1 > r0);
    }

    #[test]
    fn s_range_interval_arithmetic() {
        let space = DataSpace::new(vec![4, 4]);
        assert_eq!(s_range(&space, &[1, 0]), (0, 3));
        assert_eq!(s_range(&space, &[1, 1]), (0, 6));
        assert_eq!(s_range(&space, &[1, -1]), (-3, 3));
        assert_eq!(s_range(&space, &[-2, 1]), (-6, 3));
    }

    #[test]
    fn walk_elements_matches_direct_dot() {
        let space = DataSpace::new(vec![3, 4, 2]);
        let d = [2i64, -1, 3];
        walk_elements(&space, &d, |e, s| {
            let a = space.delinearize(e as i64);
            let direct: i64 = a.iter().zip(&d).map(|(&x, &y)| x * y).sum();
            assert_eq!(s, direct, "incremental s wrong at element {e}");
        });
    }

    #[test]
    fn floor_div_negative() {
        assert_eq!(floor_div(-1, 2), -1);
        assert_eq!(floor_div(-4, 2), -2);
        assert_eq!(floor_div(3, 2), 1);
        assert_eq!(floor_div(0, 5), 0);
    }
}
