//! Computation-mapping baseline \[26\].
//!
//! The HPDC'10 scheme clusters loop iterations over the storage-cache
//! topology: iteration blocks that touch adjacent data are placed on
//! threads that share caches, so that (under the unchanged row-major
//! layout) each cache serves a compact region of the file. In our
//! parallelization model this is precisely the `Blocked` iteration-block
//! assignment combined with a hierarchy-ordered thread mapping: thread
//! groups behind one I/O node receive consecutive runs of iteration
//! blocks, and I/O-node groups behind one storage group receive
//! consecutive super-runs.
//!
//! It is a *computation* restructuring: [`compmap_config`] only transforms
//! the [`ParallelConfig`]; layouts remain the program's defaults.

use crate::config::ParallelConfig;
use flo_parallel::BlockAssignment;

/// Derive the computation-mapping configuration from a default one.
pub fn compmap_config(cfg: &ParallelConfig) -> ParallelConfig {
    cfg.clone().with_assignment(BlockAssignment::Blocked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flo_polyhedral::{IterSpace, LoopNest};

    #[test]
    fn blocked_assignment_applied() {
        let cfg = ParallelConfig::default_for(4);
        let cm = compmap_config(&cfg);
        assert_eq!(cm.assignment, BlockAssignment::Blocked);
        assert_eq!(cm.threads, cfg.threads);
        // The partition of a nest now hands contiguous runs to threads.
        let nest = LoopNest::new(IterSpace::from_extents(&[64, 4]), vec![]);
        let p = cm.partition_of(&nest);
        let t0: Vec<usize> = p.blocks_of_thread(0).map(|b| b.index).collect();
        assert_eq!(t0, vec![0, 1, 2, 3]);
    }

    #[test]
    fn original_config_untouched() {
        let cfg = ParallelConfig::default_for(4);
        let _ = compmap_config(&cfg);
        assert_eq!(cfg.assignment, BlockAssignment::RoundRobin);
    }
}
