//! Dimension-reindexing baseline \[27\].
//!
//! The FAST'08 file layout optimization selects, per disk-resident array,
//! one of the `m!` dimension permutations of its file layout (e.g.
//! converting row-major to column-major), guided by profiling. Following
//! the paper's own reimplementation ("using profiling, we exhaustively
//! tried all possible dimension reindexings … and selected the one that
//! generated the best execution time"), we evaluate each candidate
//! permutation with a full simulated profiling run and keep the best one
//! per array.
//!
//! Crucially — and this is the paper's point in §5.4 — the search space
//! contains only *dimension permutations*: the hierarchical thread-
//! interleaved layouts of Step II cannot be expressed as any combination
//! of reindexings, which is why this baseline saturates around single-
//! digit improvements.

use crate::config::ParallelConfig;
use crate::error::CoreError;
use crate::layout::FileLayout;
use crate::tracegen::generate_traces;
use flo_polyhedral::Program;
use flo_sim::{simulate, PolicyKind, RunConfig, StorageSystem, Topology};

/// Result of the reindexing search.
#[derive(Clone, Debug)]
pub struct ReindexPlan {
    /// Chosen permutation layout per array.
    pub layouts: Vec<FileLayout>,
    /// Number of profiling runs performed.
    pub profile_runs: usize,
}

/// Simulated execution time of `layouts` (one profiling run).
fn profile_exec_time(
    program: &Program,
    cfg: &ParallelConfig,
    layouts: &[FileLayout],
    topo: &Topology,
) -> Result<f64, CoreError> {
    let traces = generate_traces(program, cfg, layouts, topo);
    let mut system = StorageSystem::new(topo.clone(), PolicyKind::LruInclusive)?;
    Ok(simulate(&mut system, &traces, &RunConfig::default()).execution_time_ms)
}

/// Run the exhaustive per-array permutation search.
///
/// Arrays are considered in declaration order; each array's candidates are
/// profiled with every other array held at its currently chosen layout
/// (row-major initially), and the best candidate is locked in — the
/// greedy coordinate descent a profile-driven compiler would perform.
pub fn best_reindexing(
    program: &Program,
    cfg: &ParallelConfig,
    topo: &Topology,
) -> Result<ReindexPlan, CoreError> {
    cfg.validate()?;
    let mut layouts: Vec<FileLayout> = program
        .arrays()
        .iter()
        .map(|_| FileLayout::RowMajor)
        .collect();
    let mut profile_runs = 0usize;
    for (k, decl) in program.arrays().iter().enumerate() {
        let m = decl.space.rank();
        let mut best_time = f64::INFINITY;
        let mut best = FileLayout::RowMajor;
        for candidate in FileLayout::all_permutations(m) {
            layouts[k] = candidate.clone();
            let t = profile_exec_time(program, cfg, &layouts, topo)?;
            profile_runs += 1;
            if t < best_time {
                best_time = t;
                best = candidate;
            }
        }
        layouts[k] = best;
    }
    Ok(ReindexPlan {
        layouts,
        profile_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flo_polyhedral::ProgramBuilder;

    fn tiny_topology() -> Topology {
        let mut t = Topology::tiny();
        t.block_elems = 4;
        t
    }

    #[test]
    fn picks_column_major_for_column_access() {
        // A purely column-accessed array: the best reindexing is the
        // transpose, which restores spatial locality.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[32, 32]);
        b.nest(&[32, 32]).read(a, &[&[0, 1], &[1, 0]]).done();
        let program = b.build();
        let topo = tiny_topology();
        let cfg = ParallelConfig::default_for(topo.compute_nodes);
        let plan = best_reindexing(&program, &cfg, &topo).unwrap();
        assert_eq!(plan.profile_runs, 2);
        match &plan.layouts[0] {
            FileLayout::DimPerm(p) => assert_eq!(p, &vec![1, 0], "must pick the transpose"),
            other => panic!("unexpected layout {other:?}"),
        }
    }

    #[test]
    fn keeps_row_major_for_row_access() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[32, 32]);
        b.nest(&[32, 32]).read(a, &[&[1, 0], &[0, 1]]).done();
        let program = b.build();
        let topo = tiny_topology();
        let cfg = ParallelConfig::default_for(topo.compute_nodes);
        let plan = best_reindexing(&program, &cfg, &topo).unwrap();
        match &plan.layouts[0] {
            FileLayout::DimPerm(p) => assert_eq!(p, &vec![0, 1], "identity must win"),
            other => panic!("unexpected layout {other:?}"),
        }
    }

    #[test]
    fn profiles_every_permutation_of_every_array() {
        let mut b = ProgramBuilder::new();
        let a2 = b.array("A2", &[8, 8]);
        let a3 = b.array("A3", &[8, 8, 8]);
        b.nest(&[8, 8]).read(a2, &[&[1, 0], &[0, 1]]).done();
        b.nest(&[8, 8, 8])
            .read(a3, &[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]])
            .done();
        let program = b.build();
        let topo = tiny_topology();
        let cfg = ParallelConfig::default_for(topo.compute_nodes);
        let plan = best_reindexing(&program, &cfg, &topo).unwrap();
        assert_eq!(plan.profile_runs, 2 + 6);
        assert_eq!(plan.layouts.len(), 2);
    }
}
