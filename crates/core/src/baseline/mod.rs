//! The two prior-work baselines of the paper's comparison (Fig. 7(g)).
//!
//! * [`compmap`] — computation mapping for multi-level storage cache
//!   hierarchies (Kandemir et al., HPDC'10 — the paper's citation \[26\]):
//!   restructures *computation* (which thread runs which iteration
//!   blocks) to match the cache-sharing topology, leaving file layouts
//!   untouched.
//! * [`reindex`] — compiler-directed code/layout restructuring (Kandemir
//!   et al., FAST'08 — citation \[27\]): a profiler-driven *dimension
//!   reindexing* that picks, per array, the best of the `m!` dimension
//!   permutations (e.g. converting row-major to column-major), without
//!   knowledge of the storage hierarchy.
//!
//! Both are "honest best-effort" reimplementations at the level the
//! comparison requires; see DESIGN.md §1.

pub mod compmap;
pub mod reindex;
