//! The layout pass's typed error spine.
//!
//! Hand-rolled (the workspace is dependency-free, so no `thiserror`):
//! a small enum with `Display`/`Error` impls and a `From` conversion for
//! the simulator errors the baselines surface. Invalid inputs — a
//! degenerate topology, a malformed parallel configuration — travel up as
//! values instead of panics, so every experiment binary can print a
//! friendly message and exit nonzero.

use flo_sim::SimError;
use std::fmt;

/// Errors produced by the layout pass, its baselines, and their inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// The simulator rejected its inputs (topology, sweep, fault plan).
    Sim(SimError),
    /// A [`crate::ParallelConfig`] is malformed.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "{e}"),
            CoreError::InvalidConfig(why) => write!(f, "invalid parallel config: {why}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::InvalidConfig(_) => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> CoreError {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = CoreError::InvalidConfig("threads must be positive".to_string());
        assert_eq!(
            e.to_string(),
            "invalid parallel config: threads must be positive"
        );
        let s: CoreError = SimError::InvalidTopology("no nodes".to_string()).into();
        assert!(s.to_string().contains("invalid topology"));
    }
}
