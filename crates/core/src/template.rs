//! Template hierarchies (§4.3, second limitation).
//!
//! The pass normally requires recompilation whenever a system parameter
//! changes. The paper sketches an extension: compile for a *template* —
//! "all hierarchies with the same number of high-level caches connected to
//! a low-level cache can be considered as belonging to the same template,
//! and a single compilation for all architectures that belong to the same
//! template would suffice (with some performance loss)".
//!
//! [`HierTemplate`] captures exactly that equivalence class (fan-in shape
//! plus threads-per-cache, ignoring absolute capacities), and
//! [`template_spec`] produces the representative hierarchy a template
//! compilation targets: capacity-free patterns where every chunk is one
//! data block. A layout compiled for the template is valid on every
//! member of the class; the granularity it gives up relative to a
//! concrete-hierarchy compilation is reported by the `ablation` binary.

use crate::target::{HierLevel, HierSpec};

/// The shape of a hierarchy: fan-ins bottom-up plus threads per layer-1
/// cache. Capacities are deliberately absent.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct HierTemplate {
    /// Threads per layer-1 cache.
    pub threads_per_cache: usize,
    /// `fan_ins[i]` = layer-(i+1) caches per layer-(i+2) cache.
    pub fan_ins: Vec<usize>,
    /// Number of top-layer caches.
    pub top_caches: usize,
}

impl HierTemplate {
    /// The template of a concrete hierarchy.
    pub fn of(spec: &HierSpec) -> HierTemplate {
        let fan_ins = (1..spec.levels.len())
            .map(|i| spec.levels[i - 1].caches / spec.levels[i].caches)
            .collect();
        HierTemplate {
            threads_per_cache: spec.threads_per_group(),
            fan_ins,
            top_caches: spec.levels.last().map_or(0, |l| l.caches),
        }
    }

    /// Whether two concrete hierarchies may share one compilation.
    pub fn compatible(a: &HierSpec, b: &HierSpec) -> bool {
        HierTemplate::of(a) == HierTemplate::of(b)
    }
}

/// The representative hierarchy a template compilation targets: the same
/// tree shape with *minimal* capacities (every thread's chunk is exactly
/// one data block, every pattern repeats once). Layouts built against it
/// are portable across every hierarchy of the template.
pub fn template_spec(template: &HierTemplate, block_elems: u64) -> HierSpec {
    let mut caches = template.top_caches;
    let mut counts = vec![caches];
    for &f in template.fan_ins.iter().rev() {
        caches *= f;
        counts.push(caches);
    }
    counts.reverse();
    let threads = counts[0] * template.threads_per_cache;
    let levels: Vec<HierLevel> = counts
        .iter()
        .map(|&c| HierLevel {
            caches: c,
            // Minimal capacity: one block per thread below this cache.
            capacity_elems: block_elems * (template.threads_per_cache * counts[0] / c) as u64,
        })
        .collect();
    let group_of_thread = (0..threads)
        .map(|t| t / template.threads_per_cache)
        .collect();
    HierSpec {
        levels,
        threads,
        group_of_thread,
        block_elems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::ChunkAddresser;
    use crate::target::TargetLayers;
    use flo_parallel::ThreadMapping;
    use flo_sim::Topology;

    fn spec_for(topo: &Topology) -> HierSpec {
        let mapping = ThreadMapping::identity(topo.compute_nodes);
        HierSpec::build(topo, &mapping, topo.compute_nodes, TargetLayers::Both)
    }

    #[test]
    fn same_shape_different_capacities_share_a_template() {
        let a = spec_for(&Topology::paper_default());
        let b = spec_for(&Topology::paper_default().with_cache_scale(4, 1));
        assert!(HierTemplate::compatible(&a, &b));
    }

    #[test]
    fn different_fan_ins_do_not() {
        let a = spec_for(&Topology::paper_default()); // (64,16,4)
        let b = spec_for(&Topology::paper_default().with_node_counts(64, 8, 4));
        assert!(!HierTemplate::compatible(&a, &b));
    }

    #[test]
    fn template_of_paper_default() {
        let t = HierTemplate::of(&spec_for(&Topology::paper_default()));
        assert_eq!(t.threads_per_cache, 4);
        assert_eq!(t.fan_ins, vec![4]);
        assert_eq!(t.top_caches, 4);
    }

    #[test]
    fn template_spec_reconstructs_the_shape() {
        let topo = Topology::paper_default();
        let concrete = spec_for(&topo);
        let template = HierTemplate::of(&concrete);
        let spec = template_spec(&template, topo.block_elems);
        assert_eq!(spec.levels.len(), concrete.levels.len());
        assert_eq!(spec.threads, concrete.threads);
        assert_eq!(
            spec.levels.iter().map(|l| l.caches).collect::<Vec<_>>(),
            concrete.levels.iter().map(|l| l.caches).collect::<Vec<_>>()
        );
        assert!(HierTemplate::compatible(&spec, &concrete));
    }

    #[test]
    fn template_layouts_are_minimal_and_injective() {
        let topo = Topology::paper_default();
        let template = HierTemplate::of(&spec_for(&topo));
        let spec = template_spec(&template, topo.block_elems);
        let addr = ChunkAddresser::new(&spec);
        assert_eq!(
            addr.chunk_elems(),
            topo.block_elems,
            "template chunks are one block"
        );
        let mut seen = std::collections::HashSet::new();
        for t in 0..spec.threads {
            for x in 0..4u64 {
                assert!(
                    seen.insert(addr.chunk_start(t, x)),
                    "collision (t={t}, x={x})"
                );
            }
        }
    }
}
