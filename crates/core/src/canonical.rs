//! Canonical-layout boundary transformations (§4.3, first limitation).
//!
//! The optimized file layouts are private to one compiled binary: "the
//! data is not readable by other applications". The paper proposes adding
//! two layout transformations — input arrays are converted *from* a
//! canonical layout (row-major) when the program starts, and output arrays
//! are converted back *to* a canonical layout (or a consumer's preferred
//! layout) when it ends.
//!
//! This module implements that extension: [`RelayoutPlan`] computes the
//! exact block-transfer schedule of such a conversion and its simulated
//! cost, so the pass can report whether optimizing an array is still
//! profitable once the one-time conversions are charged
//! ([`amortization_threshold`]).

use crate::layout::FileLayout;
use flo_polyhedral::DataSpace;
use flo_sim::{BlockAddr, DiskModel};

/// Which boundary a conversion sits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Boundary {
    /// Canonical → optimized, before the first access.
    Input,
    /// Optimized → canonical (or a consumer layout), after the last write.
    Output,
}

/// The block-level schedule of one array conversion.
#[derive(Clone, Debug)]
pub struct RelayoutPlan {
    /// Which boundary this conversion sits on.
    pub boundary: Boundary,
    /// Source block reads, in the order the converter streams the
    /// canonical file.
    pub reads: u64,
    /// Destination block writes (distinct destination blocks touched).
    pub writes: u64,
    /// Estimated wall-clock cost in milliseconds, assuming the canonical
    /// side streams sequentially and the optimized side is written in
    /// file-offset order (both sides sequential: a two-pass external
    /// permutation).
    pub cost_ms: f64,
}

/// Plan the conversion of one array between `FileLayout::RowMajor` and
/// `layout`.
pub fn plan_relayout(
    space: &DataSpace,
    layout: &FileLayout,
    block_elems: u64,
    boundary: Boundary,
    disk: &DiskModel,
) -> RelayoutPlan {
    let elems = space.num_elements() as u64;
    let src_blocks = elems.div_ceil(block_elems);
    // Distinct destination blocks (holes in hierarchical layouts mean the
    // destination can span more blocks than the dense source).
    let mut dst = std::collections::HashSet::new();
    for e in 0..elems {
        let a = space.delinearize(e as i64);
        let off = layout.offset_of(space, &a);
        dst.insert(BlockAddr::containing(0, off, block_elems));
    }
    let writes = dst.len() as u64;
    // A converter sorts the permutation offline, so both passes stream:
    // read every source block once + write every destination block once,
    // all sequential.
    let cost_ms = (src_blocks + writes) as f64 * disk.sequential_ms();
    RelayoutPlan {
        boundary,
        reads: src_blocks,
        writes,
        cost_ms,
    }
}

/// How many times must the program's access savings be realized before a
/// pair of boundary conversions pays for itself?
///
/// Returns the break-even count `ceil(conversion_cost / per_run_saving)`,
/// or `None` when the optimization saves nothing (conversion can never
/// amortize).
pub fn amortization_threshold(conversion_cost_ms: f64, per_run_saving_ms: f64) -> Option<u64> {
    if per_run_saving_ms <= 0.0 {
        return None;
    }
    Some((conversion_cost_ms / per_run_saving_ms).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::HierLayout;

    #[test]
    fn dense_relayout_touches_every_block_once() {
        let space = DataSpace::new(vec![16, 16]);
        let plan = plan_relayout(
            &space,
            &FileLayout::ColMajor,
            8,
            Boundary::Input,
            &DiskModel::paper_default(),
        );
        assert_eq!(plan.reads, 32);
        assert_eq!(plan.writes, 32);
        assert!(plan.cost_ms > 0.0);
    }

    #[test]
    fn hierarchical_holes_increase_writes() {
        // A sparse table: 4 elements scattered over a 100-element file.
        let space = DataSpace::new(vec![2, 2]);
        let layout = FileLayout::Hierarchical(HierLayout {
            table: vec![0, 30, 60, 90],
            file_elems: 91,
        });
        let plan = plan_relayout(
            &space,
            &layout,
            8,
            Boundary::Output,
            &DiskModel::paper_default(),
        );
        assert_eq!(plan.reads, 1, "dense source is one block");
        assert_eq!(plan.writes, 4, "each element lands in its own block");
    }

    #[test]
    fn identity_relayout_is_cheapest() {
        let space = DataSpace::new(vec![8, 8]);
        let disk = DiskModel::paper_default();
        let id = plan_relayout(&space, &FileLayout::RowMajor, 8, Boundary::Input, &disk);
        let tr = plan_relayout(&space, &FileLayout::ColMajor, 8, Boundary::Input, &disk);
        assert!(id.cost_ms <= tr.cost_ms);
    }

    #[test]
    fn amortization_math() {
        assert_eq!(amortization_threshold(100.0, 50.0), Some(2));
        assert_eq!(amortization_threshold(100.0, 30.0), Some(4));
        assert_eq!(amortization_threshold(100.0, 0.0), None);
        assert_eq!(amortization_threshold(0.0, 10.0), Some(0));
    }
}
