//! Static block-footprint estimation.
//!
//! [`crate::cost`] *measures* footprints from generated traces; this
//! module *predicts* them from the program alone — the compile-time cost
//! model a production pass uses to decide whether optimizing an array is
//! profitable (e.g. against the canonical-conversion charges of
//! [`crate::canonical`]) without simulating anything.
//!
//! For one thread and one reference, the touched region is the image of
//! the thread's iteration sub-box under the affine map `a = Q·i + q`. Per
//! data dimension `k` the image spans
//! `Σ_j |Q[k][j]|·(trip_j − 1) + 1` indices (interval arithmetic, exact
//! for boxes). Under a row-major layout the block count follows from
//! whether the innermost data dimension is walked densely; under the
//! optimized layout each thread's elements are consecutive, so the block
//! count is simply `⌈elements / block⌉` — §2's "minimal block footprint".

use crate::config::ParallelConfig;
use flo_polyhedral::{LoopNest, Program};
use flo_sim::Topology;

/// Predicted per-thread block footprints for one array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayFootprintEstimate {
    /// Elements the busiest thread touches.
    pub elements: u64,
    /// Blocks under the default row-major layout.
    pub blocks_row_major: u64,
    /// Blocks under the inter-node layout (the minimum possible).
    pub blocks_optimized: u64,
}

impl ArrayFootprintEstimate {
    /// Predicted footprint reduction factor (≥ 1).
    pub fn reduction(&self) -> f64 {
        self.blocks_row_major as f64 / self.blocks_optimized.max(1) as f64
    }
}

/// Image extent of one data dimension under `Q` for the given per-loop
/// trip counts.
fn image_extent(q_row: &[i64], trips: &[i64]) -> u64 {
    let span: i64 = q_row
        .iter()
        .zip(trips)
        .map(|(&c, &t)| c.abs() * (t - 1).max(0))
        .sum();
    (span + 1) as u64
}

/// Estimate the busiest thread's footprint on `array` for one nest.
///
/// The thread's share of the parallel loop is a *set* of iteration blocks
/// (round-robin ownership scatters it), so each owned block's image is
/// accounted separately; the per-image block counts are upper bounds
/// (misaligned inner spans may straddle one extra block per outer index).
fn estimate_for_nest(
    nest: &LoopNest,
    array: flo_polyhedral::ArrayId,
    cfg: &ParallelConfig,
    block_elems: u64,
) -> ArrayFootprintEstimate {
    let partition = cfg.partition_of(nest);
    let rank = nest.space.rank();
    let u = partition.u();
    let mut elements = 0u64;
    let mut blocks_row = 0u64;
    for r in nest.refs_to(array) {
        let q = r.access.matrix();
        let mut elems = 0u64;
        let mut row_blocks = 0u64;
        for owned in partition.blocks_of_thread(0) {
            let trips: Vec<i64> = (0..rank)
                .map(|k| {
                    if k == u {
                        owned.width()
                    } else {
                        nest.space.trip_count(k)
                    }
                })
                .collect();
            let extents: Vec<u64> = (0..q.rows())
                .map(|k| image_extent(q.row(k), &trips))
                .collect();
            let e: u64 = extents.iter().product();
            let inner = *extents.last().unwrap_or(&1);
            let outer: u64 = extents[..extents.len().saturating_sub(1)].iter().product();
            // Dense inner span: ceil(inner / block) blocks per outer index,
            // plus one straddle block per outer index when misaligned.
            let straddle = if inner.is_multiple_of(block_elems) {
                0
            } else {
                outer
            };
            elems += e;
            row_blocks += outer * inner.div_ceil(block_elems) + straddle;
        }
        elements = elements.max(elems);
        blocks_row = blocks_row.max(row_blocks);
    }
    ArrayFootprintEstimate {
        elements,
        blocks_row_major: blocks_row,
        blocks_optimized: elements.div_ceil(block_elems).max(1),
    }
}

/// Estimate, per array, the busiest thread's footprint across the whole
/// program (the maximum over nests).
pub fn estimate_footprints(
    program: &Program,
    cfg: &ParallelConfig,
    topo: &Topology,
) -> Vec<ArrayFootprintEstimate> {
    program
        .array_ids()
        .map(|array| {
            let mut est = ArrayFootprintEstimate {
                elements: 0,
                blocks_row_major: 0,
                blocks_optimized: 1,
            };
            for nest in program.nests() {
                if nest.refs_to(array).next().is_none() {
                    continue;
                }
                let e = estimate_for_nest(nest, array, cfg, topo.block_elems);
                if e.blocks_row_major > est.blocks_row_major {
                    est = e;
                }
            }
            est
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::footprint;
    use crate::pass::{run_layout_pass, PassOptions};
    use crate::tracegen::{default_layouts, generate_traces};
    use flo_polyhedral::ProgramBuilder;

    fn tiny_topology() -> Topology {
        let mut t = Topology::tiny();
        t.block_elems = 4;
        t
    }

    #[test]
    fn image_extents() {
        // identity row over trips (8, 8): extent 8.
        assert_eq!(image_extent(&[1, 0], &[8, 8]), 8);
        // skewed row i1 + i2: 8 + 8 - 1.
        assert_eq!(image_extent(&[1, 1], &[8, 8]), 15);
        // strided 2·i1: 2·7 + 1.
        assert_eq!(image_extent(&[2, 0], &[8, 8]), 15);
        // constant: 1.
        assert_eq!(image_extent(&[0, 0], &[8, 8]), 1);
    }

    #[test]
    fn transposed_access_predicts_large_row_major_footprint() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[32, 32]);
        b.nest(&[32, 32]).read(a, &[&[0, 1], &[1, 0]]).done();
        let program = b.build();
        let topo = tiny_topology();
        let cfg = ParallelConfig::default_for(topo.compute_nodes);
        let est = &estimate_footprints(&program, &cfg, &topo)[0];
        // Thread owns 8 of 32 columns → 32×8 = 256 elements.
        assert_eq!(est.elements, 256);
        assert_eq!(est.blocks_optimized, 64);
        assert!(
            est.blocks_row_major >= 2 * est.blocks_optimized,
            "transposed row-major footprint must be far from minimal: {} vs {}",
            est.blocks_row_major,
            est.blocks_optimized
        );
    }

    #[test]
    fn row_access_is_already_minimal() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[32, 32]);
        b.nest(&[32, 32]).read(a, &[&[1, 0], &[0, 1]]).done();
        let program = b.build();
        let topo = tiny_topology();
        let cfg = ParallelConfig::default_for(topo.compute_nodes);
        let est = &estimate_footprints(&program, &cfg, &topo)[0];
        assert_eq!(est.blocks_row_major, est.blocks_optimized);
        assert!((est.reduction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn estimates_bracket_measured_footprints() {
        // The analytic estimate must agree with trace measurement within
        // rounding for both layouts, on a transposed kernel.
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[32, 32]);
        b.nest(&[32, 32]).read(a, &[&[0, 1], &[1, 0]]).done();
        let program = b.build();
        let topo = tiny_topology();
        let opts = PassOptions::default_for(&topo);
        let est = &estimate_footprints(&program, &opts.parallel, &topo)[0];

        let def = footprint(
            &generate_traces(&program, &opts.parallel, &default_layouts(&program), &topo),
            &topo,
        );
        let plan = run_layout_pass(&program, &topo, &opts);
        let opt = footprint(
            &generate_traces(&program, &opts.parallel, &plan.layouts, &topo),
            &topo,
        );
        let measured_def = def.max_thread_footprint() as u64;
        let measured_opt = opt.max_thread_footprint() as u64;
        assert!(
            est.blocks_row_major >= measured_def,
            "estimate {} must bound measured default {}",
            est.blocks_row_major,
            measured_def
        );
        assert!(
            measured_opt <= est.blocks_optimized + 1,
            "optimized measurement {} must be near the minimum {}",
            measured_opt,
            est.blocks_optimized
        );
    }

    #[test]
    fn skewed_access_counts_wavefront_span() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[16, 8]);
        b.nest(&[8, 8]).read(a, &[&[1, 1], &[0, 1]]).done();
        let program = b.build();
        let topo = tiny_topology();
        let cfg = ParallelConfig::default_for(topo.compute_nodes);
        let est = &estimate_footprints(&program, &cfg, &topo)[0];
        // Thread 0 owns wavefronts {0, 4} (round-robin, width 1): each
        // owned wavefront's image spans a0 ∈ 8 values × a1 ∈ 8 values.
        assert_eq!(est.elements, 2 * 8 * 8);
    }
}
