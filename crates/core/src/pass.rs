//! The inter-node file layout optimization pass (Fig. 4).
//!
//! [`run_layout_pass`] is the compiler entry point: it consumes a
//! parallelized program plus the storage-cache topology and produces one
//! [`FileLayout`] per disk-resident array, applying Step I
//! ([`crate::partition`]) and Step II ([`crate::pattern`],
//! [`crate::algorithm1`]) to every array whose references admit a useful
//! unimodular transformation, and leaving the rest row-major (the paper
//! optimizes ~72% of arrays on average; the others keep their original
//! layouts).

use crate::algorithm1::{build_hier_layout, SMapping};
use crate::config::ParallelConfig;
use crate::layout::FileLayout;
use crate::partition::{partition_array, AccessConstraint, PartitionOutcome};
use crate::pattern::ChunkAddresser;
use crate::target::{HierSpec, TargetLayers};
use flo_linalg::dot;
use flo_polyhedral::{ArrayId, Program};
use flo_sim::Topology;
use std::time::Instant;

/// Options of one pass invocation.
#[derive(Clone, Debug)]
pub struct PassOptions {
    /// Parallelization configuration (threads, `u`, mapping, assignment).
    pub parallel: ParallelConfig,
    /// Which cache layers the layout patterns target (Fig. 7(f)).
    pub target: TargetLayers,
    /// Order each thread's elements by the first touch of its rewritten
    /// references (on by default; the `ablation` bench measures what
    /// hyperplane-lexicographic order costs instead).
    pub first_touch: bool,
    /// Cap chunk sizes and pattern repetitions at the thread's actual
    /// data (on by default; uncapped is the paper's literal `S₁/l`).
    pub cap_chunks: bool,
}

impl PassOptions {
    /// Default execution on `topo`: one thread per compute node, both
    /// layers targeted.
    pub fn default_for(topo: &Topology) -> PassOptions {
        PassOptions {
            parallel: ParallelConfig::default_for(topo.compute_nodes),
            target: TargetLayers::Both,
            first_touch: true,
            cap_chunks: true,
        }
    }

    /// Copy with a different target (convenience for sweeps).
    pub fn with_target(mut self, target: TargetLayers) -> PassOptions {
        self.target = target;
        self
    }
}

/// Per-array diagnostics.
#[derive(Clone, Debug)]
pub struct ArrayReport {
    /// Array name.
    pub name: String,
    /// Whether the inter-node layout was applied.
    pub optimized: bool,
    /// Step I's partitioning row (when optimized).
    pub d_row: Option<Vec<i64>>,
    /// Weight fraction of references the transformation satisfies.
    pub satisfied_weight_fraction: f64,
}

/// The pass result: layouts plus diagnostics.
#[derive(Clone, Debug)]
pub struct LayoutPlan {
    /// One layout per array, indexed by [`ArrayId`].
    pub layouts: Vec<FileLayout>,
    /// Per-array reports.
    pub reports: Vec<ArrayReport>,
    /// Wall-clock compile time of the pass in milliseconds.
    pub compile_ms: f64,
}

impl LayoutPlan {
    /// Fraction of arrays that received an optimized layout (§5.1 reports
    /// ~72% across the suite).
    pub fn optimized_fraction(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().filter(|r| r.optimized).count() as f64 / self.reports.len() as f64
    }
}

/// Gather Step I constraints for one array: distinct access matrices with
/// their effective parallel dimension and accumulated weights, heaviest
/// first.
fn constraints_for(
    program: &Program,
    array: ArrayId,
    cfg: &ParallelConfig,
) -> Vec<AccessConstraint> {
    let profile = program.access_profile(array);
    profile
        .weighted_matrices
        .into_iter()
        .map(|(q, weight)| {
            let u = cfg.u_for_rank(q.cols());
            AccessConstraint { q, u, weight }
        })
        .collect()
}

/// Run the inter-node file layout optimization.
pub fn run_layout_pass(program: &Program, topo: &Topology, opts: &PassOptions) -> LayoutPlan {
    let _span = flo_obs::span("layout-pass");
    let start = Instant::now();
    let cfg = &opts.parallel;
    let spec = HierSpec::build(topo, &cfg.mapping, cfg.threads, opts.target);
    let mut layouts = Vec::with_capacity(program.arrays().len());
    let mut reports = Vec::with_capacity(program.arrays().len());
    for array in program.array_ids() {
        let decl = program.array(array);
        let constraints = constraints_for(program, array, cfg);
        let outcome = partition_array(&constraints);
        match outcome {
            PartitionOutcome::Optimized(p) => {
                // Locate the primary reference: the heaviest satisfied
                // access matrix, in its heaviest nest, for the s-mapping
                // and the iteration partition.
                let primary_idx = p
                    .satisfied
                    .iter()
                    .position(|&s| s)
                    .expect("optimized implies satisfied");
                let primary_q = &constraints[primary_idx].q;
                // The heaviest nest containing a primary-matrix reference.
                let primary_nest = program
                    .nests()
                    .iter()
                    .filter(|nest| nest.refs_to(array).any(|r| r.access.matrix() == primary_q))
                    .max_by_key(|nest| nest.reference_weight())
                    .expect("primary reference must exist");
                let partition = cfg.partition_of(primary_nest);
                // Every satisfied-matrix reference in that nest takes part
                // in the first-touch ordering, in program order; the first
                // one defines the s-mapping.
                let satisfied_qs: Vec<&flo_linalg::IMat> = constraints
                    .iter()
                    .zip(&p.satisfied)
                    .filter(|(_, &s)| s)
                    .map(|(c, _)| &c.q)
                    .collect();
                let accesses: Vec<&flo_polyhedral::AffineAccess> = primary_nest
                    .refs_to(array)
                    .filter(|r| satisfied_qs.iter().any(|q| *q == r.access.matrix()))
                    .map(|r| &r.access)
                    .collect();
                let first = primary_nest
                    .refs_to(array)
                    .find(|r| r.access.matrix() == primary_q)
                    .expect("primary reference must exist");
                let beta = dot(&p.d_row, first.access.offset());
                let smap = SMapping {
                    alpha: p.alpha,
                    beta,
                };
                let per_thread = if opts.cap_chunks {
                    (decl.space.num_elements() as u64).div_ceil(cfg.threads as u64)
                } else {
                    u64::MAX
                };
                let addresser = ChunkAddresser::for_data(&spec, per_thread);
                let primary_ref = opts.first_touch.then_some(crate::algorithm1::PrimaryRef {
                    nest_space: &primary_nest.space,
                    accesses,
                });
                let layout = build_hier_layout(
                    &decl.space,
                    &p.d_row,
                    smap,
                    &partition,
                    &addresser,
                    primary_ref,
                );
                reports.push(ArrayReport {
                    name: decl.name.clone(),
                    optimized: true,
                    d_row: Some(p.d_row.clone()),
                    satisfied_weight_fraction: p.satisfied_weight_fraction,
                });
                layouts.push(FileLayout::Hierarchical(layout));
            }
            PartitionOutcome::NotOptimizable(_) => {
                reports.push(ArrayReport {
                    name: decl.name.clone(),
                    optimized: false,
                    d_row: None,
                    satisfied_weight_fraction: 0.0,
                });
                layouts.push(FileLayout::RowMajor);
            }
        }
    }
    LayoutPlan {
        layouts,
        reports,
        compile_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flo_polyhedral::ProgramBuilder;

    fn tiny_topology() -> Topology {
        let mut t = Topology::tiny();
        t.block_elems = 4;
        t
    }

    /// The paper's matmul: W[i1,i2] += U[i1,i3]·V[i3,i2].
    fn matmul() -> Program {
        let mut b = ProgramBuilder::new();
        let w = b.array("W", &[16, 16]);
        let u = b.array("U", &[16, 16]);
        let v = b.array("V", &[16, 16]);
        b.nest(&[16, 16, 16])
            .write(w, &[&[1, 0, 0], &[0, 1, 0]])
            .read(u, &[&[1, 0, 0], &[0, 0, 1]])
            .read(v, &[&[0, 0, 1], &[0, 1, 0]])
            .done();
        b.build()
    }

    #[test]
    fn matmul_optimizes_w_and_u_not_v() {
        let program = matmul();
        let topo = tiny_topology();
        let opts = PassOptions::default_for(&topo);
        let plan = run_layout_pass(&program, &topo, &opts);
        assert_eq!(plan.reports.len(), 3);
        // W[i1, i2] and U[i1, i3] partition along i1 (u = 0); V[i3, i2]
        // does not depend on i1 → not optimizable.
        assert!(plan.reports[0].optimized, "W must be optimized");
        assert!(plan.reports[1].optimized, "U must be optimized");
        assert!(!plan.reports[2].optimized, "V cannot be optimized");
        assert!((plan.optimized_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!(matches!(plan.layouts[0], FileLayout::Hierarchical(_)));
        assert!(matches!(plan.layouts[2], FileLayout::RowMajor));
        assert_eq!(plan.reports[0].d_row, Some(vec![1, 0]));
    }

    #[test]
    fn optimized_layouts_are_injective() {
        let program = matmul();
        let topo = tiny_topology();
        let plan = run_layout_pass(&program, &topo, &PassOptions::default_for(&topo));
        for (k, layout) in plan.layouts.iter().enumerate() {
            if let FileLayout::Hierarchical(h) = layout {
                let mut offs: Vec<u64> = h.table.clone();
                offs.sort_unstable();
                offs.dedup();
                assert_eq!(
                    offs.len(),
                    h.table.len(),
                    "array {k}: hierarchical layout must be injective"
                );
            }
        }
    }

    #[test]
    fn all_targets_produce_plans() {
        let program = matmul();
        let topo = tiny_topology();
        for target in TargetLayers::all() {
            let plan = run_layout_pass(
                &program,
                &topo,
                &PassOptions::default_for(&topo).with_target(target),
            );
            assert_eq!(plan.layouts.len(), 3, "target {target:?}");
            assert!(plan.reports[0].optimized);
        }
    }

    #[test]
    fn compile_time_is_recorded() {
        let program = matmul();
        let topo = tiny_topology();
        let plan = run_layout_pass(&program, &topo, &PassOptions::default_for(&topo));
        assert!(plan.compile_ms >= 0.0);
    }

    #[test]
    fn empty_program_yields_empty_plan() {
        let program = Program::new();
        let topo = tiny_topology();
        let plan = run_layout_pass(&program, &topo, &PassOptions::default_for(&topo));
        assert!(plan.layouts.is_empty());
        assert_eq!(plan.optimized_fraction(), 0.0);
    }

    #[test]
    fn transposed_heavy_reference_drives_layout() {
        // An array accessed mostly by columns: the layout must follow the
        // transposed pattern (d = (0, 1)).
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[16, 16]);
        b.nest(&[16, 16]).read(a, &[&[0, 1], &[1, 0]]).done();
        let program = b.build();
        let topo = tiny_topology();
        let plan = run_layout_pass(&program, &topo, &PassOptions::default_for(&topo));
        assert!(plan.reports[0].optimized);
        assert_eq!(plan.reports[0].d_row, Some(vec![0, 1]));
    }
}
