//! Trace generation: from a laid-out program to per-thread block streams.
//!
//! For every thread, the generator walks its iteration schedule (blocks in
//! ownership order, lexicographic within a block), evaluates each array
//! reference, maps the element through the array's [`FileLayout`], and
//! emits the containing data block. Consecutive repeats collapse (the
//! runtime buffers within a block), producing exactly the request stream
//! the storage hierarchy would see.
//!
//! Two generators produce that stream:
//!
//! * [`generate_traces`] — the fast path: threads fan out in parallel and
//!   each walks its schedule with incremental cursors and per-segment
//!   block-run emission (see [`crate::emit`]).
//! * [`generate_traces_reference`] — the original element-at-a-time
//!   evaluator, kept as the executable specification; the differential
//!   tests assert the two agree entry for entry on every workload.

use crate::config::ParallelConfig;
use crate::emit;
use crate::layout::FileLayout;
use flo_parallel::ThreadSchedule;
use flo_polyhedral::Program;
use flo_sim::{BlockAddr, ThreadTrace, Topology};

/// Upper bound on the up-front per-trace entry reservation. Coalescing
/// keeps most traces far below their element-access bound; reserving the
/// full bound maps (and then unmaps) hundreds of megabytes per suite,
/// which costs more in page-table traffic than the reallocations saved.
const RESERVE_CAP_ENTRIES: usize = 1 << 16;

/// Generate the per-thread block traces of `program` under `layouts`.
///
/// `layouts[k]` is the file layout of array `k`; files are numbered by
/// array id. Equivalent to [`generate_traces_reference`] but runs the
/// incremental fast path with one parallel task per thread trace.
pub fn generate_traces(
    program: &Program,
    cfg: &ParallelConfig,
    layouts: &[FileLayout],
    topo: &Topology,
) -> Vec<ThreadTrace> {
    assert_eq!(
        layouts.len(),
        program.arrays().len(),
        "one layout per array"
    );
    let _span = flo_obs::span("tracegen");
    let partitions: Vec<_> = program
        .nests()
        .iter()
        .map(|n| cfg.partition_of(n))
        .collect();
    flo_parallel::parallel_map_indexed(cfg.threads, |t| {
        let mut trace = ThreadTrace::new(t, cfg.mapping.node_of(t));
        // Reserve up to the element-access upper bound (entries only
        // shrink under coalescing), capped: growing a multi-megabyte
        // entry vector from zero triggers allocator churn, but the full
        // bound over-maps badly when coalescing is effective.
        let cap: u64 = program
            .nests()
            .iter()
            .zip(&partitions)
            .map(|(nest, partition)| {
                let u = partition.u();
                let extent_u = nest.space.upper(u) - nest.space.lower(u);
                let inner = nest.space.total_iterations() / extent_u.max(1);
                let owned: i64 = partition.blocks_of_thread(t).map(|b| b.hi - b.lo).sum();
                owned as u64 * inner as u64 * nest.refs.len() as u64
            })
            .sum();
        trace
            .entries
            .reserve((cap as usize).min(RESERVE_CAP_ENTRIES));
        for (nest, partition) in program.nests().iter().zip(&partitions) {
            emit::emit_nest(
                program,
                nest,
                partition,
                t,
                layouts,
                topo.block_elems,
                &mut trace,
            );
        }
        // Traces live long (the bench layer caches them); return excess
        // growth capacity to the allocator.
        trace.entries.shrink_to_fit();
        trace
    })
}

/// The reference trace generator: full affine evaluation and layout
/// lookup per dynamic reference. `O(iterations · refs)` with a matrix
/// product each — slow, but obviously correct; [`generate_traces`] is
/// differentially tested against it.
pub fn generate_traces_reference(
    program: &Program,
    cfg: &ParallelConfig,
    layouts: &[FileLayout],
    topo: &Topology,
) -> Vec<ThreadTrace> {
    assert_eq!(
        layouts.len(),
        program.arrays().len(),
        "one layout per array"
    );
    let mut traces: Vec<ThreadTrace> = (0..cfg.threads)
        .map(|t| ThreadTrace::new(t, cfg.mapping.node_of(t)))
        .collect();
    let mut elem = Vec::new();
    for nest in program.nests() {
        let partition = cfg.partition_of(nest);
        for (t, trace) in traces.iter_mut().enumerate() {
            let sched = ThreadSchedule::new(&nest.space, &partition, t);
            for i in sched.iterations() {
                for r in &nest.refs {
                    let space = &program.array(r.array).space;
                    elem.resize(space.rank(), 0);
                    r.access.eval_into(&i, &mut elem);
                    debug_assert!(
                        space.contains(&elem),
                        "reference to {:?} escapes array '{}'",
                        elem,
                        program.array(r.array).name
                    );
                    let offset = layouts[r.array.0].offset_of(space, &elem);
                    trace.push(BlockAddr::containing(
                        r.array.0 as u32,
                        offset,
                        topo.block_elems,
                    ));
                }
            }
        }
    }
    traces
}

/// Row-major layouts for every array of a program (the "default
/// execution" configuration).
pub fn default_layouts(program: &Program) -> Vec<FileLayout> {
    program
        .arrays()
        .iter()
        .map(|_| FileLayout::RowMajor)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flo_polyhedral::ProgramBuilder;

    fn tiny_topology() -> Topology {
        let mut t = Topology::tiny();
        t.block_elems = 4;
        t
    }

    fn row_program() -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[8, 8]);
        b.nest(&[8, 8]).read(a, &[&[1, 0], &[0, 1]]).done();
        b.build()
    }

    #[test]
    fn row_major_identity_trace_is_sequential() {
        let program = row_program();
        let mut cfg = ParallelConfig::default_for(4);
        cfg.blocks_per_thread = 1; // 4 blocks of 2 rows
        let layouts = default_layouts(&program);
        let traces = generate_traces(&program, &cfg, &layouts, &tiny_topology());
        assert_eq!(traces.len(), 4);
        // Thread 0 reads rows 0..2 = elements 0..16 = blocks 0..4.
        let blocks: Vec<u64> = traces[0].blocks().map(|b| b.index).collect();
        assert_eq!(blocks, vec![0, 1, 2, 3]);
        // Every trace covers its own disjoint block range.
        let t1: Vec<u64> = traces[1].blocks().map(|b| b.index).collect();
        assert_eq!(t1, vec![4, 5, 6, 7]);
    }

    #[test]
    fn column_access_under_row_major_scatters() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[8, 8]);
        // Transposed access: A[i2, i1].
        b.nest(&[8, 8]).read(a, &[&[0, 1], &[1, 0]]).done();
        let program = b.build();
        let mut cfg = ParallelConfig::default_for(4);
        cfg.blocks_per_thread = 1;
        let traces = generate_traces(&program, &cfg, &default_layouts(&program), &tiny_topology());
        // Thread 0 owns i1 ∈ 0..2 → columns 0..2 → touches every row's
        // blocks: footprint = 8 rows × 2 cols / shared blocks — much wider
        // than the sequential case.
        assert!(
            traces[0].distinct_blocks() > 4,
            "column access must scatter"
        );
    }

    #[test]
    fn total_requests_bounded_by_dynamic_accesses() {
        let program = row_program();
        let cfg = ParallelConfig::default_for(4);
        let traces = generate_traces(&program, &cfg, &default_layouts(&program), &tiny_topology());
        let total: usize = traces.iter().map(ThreadTrace::len).sum();
        // 64 iterations × 1 ref, block-collapsed → at most 64.
        assert!(total <= 64);
        assert!(total >= 16, "dedup cannot erase distinct blocks");
    }

    #[test]
    fn mapping_changes_compute_nodes() {
        let program = row_program();
        let cfg = ParallelConfig::default_for(4)
            .with_mapping(flo_parallel::ThreadMapping::from_vec(vec![3, 2, 1, 0]));
        let traces = generate_traces(&program, &cfg, &default_layouts(&program), &tiny_topology());
        assert_eq!(traces[0].compute_node, 3);
        assert_eq!(traces[3].compute_node, 0);
    }

    #[test]
    #[should_panic(expected = "one layout per array")]
    fn layout_count_checked() {
        let program = row_program();
        let cfg = ParallelConfig::default_for(2);
        generate_traces(&program, &cfg, &[], &tiny_topology());
    }
}
