//! File layouts: the mapping from array elements to file offsets.
//!
//! A [`FileLayout`] is an injective map from the elements of one
//! disk-resident array to offsets in its file (§2's "file layout"). The
//! conventional layouts (row-major, column-major, arbitrary dimension
//! permutations — the search space of the reindexing baseline \[27\]) are
//! closed-form; the paper's inter-node layout is carried as the explicit
//! address table Algorithm 1 constructs at compile time.

use flo_json::Json;
use flo_polyhedral::DataSpace;

/// A file layout for one array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FileLayout {
    /// Row-major (the paper's default layout).
    RowMajor,
    /// Column-major (dimensions reversed).
    ColMajor,
    /// A general dimension permutation: `perm[k]` is the original
    /// dimension stored at position `k` of the permuted order (outermost
    /// first). `DimPerm(vec![0, 1, …])` is row-major.
    DimPerm(Vec<usize>),
    /// The inter-node hierarchical layout of §4: an explicit element →
    /// offset table (indexed by row-major element index).
    Hierarchical(HierLayout),
}

/// The table-backed hierarchical layout produced by Algorithm 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierLayout {
    /// `table[row_major_index(a)]` = file offset of element `a`.
    pub table: Vec<u64>,
    /// One past the largest assigned offset (the file's extent in
    /// elements, holes included).
    pub file_elems: u64,
}

impl FileLayout {
    /// File offset (in elements) of array element `a` under this layout.
    pub fn offset_of(&self, space: &DataSpace, a: &[i64]) -> u64 {
        debug_assert!(space.contains(a), "offset_of: {a:?} outside array");
        match self {
            FileLayout::RowMajor => space.linearize(a) as u64,
            FileLayout::ColMajor => {
                let m = space.rank();
                let mut off: i64 = 0;
                for k in (0..m).rev() {
                    off = off * space.extent(k) + a[k];
                }
                off as u64
            }
            FileLayout::DimPerm(perm) => {
                debug_assert_eq!(perm.len(), space.rank(), "DimPerm rank mismatch");
                let mut off: i64 = 0;
                for &k in perm {
                    off = off * space.extent(k) + a[k];
                }
                off as u64
            }
            FileLayout::Hierarchical(h) => h.table[space.linearize(a) as usize],
        }
    }

    /// Per-dimension element strides for dense layouts: the offset of
    /// element `a` is exactly `Σ_k strides[k]·a[k]` (no constant term).
    /// `None` for table-backed hierarchical layouts, whose offsets are
    /// not linear in the element index.
    ///
    /// This is what makes *incremental* offset evaluation possible: when
    /// an element vector moves by a delta `Δ` (an [`AccessCursor`] step),
    /// the offset moves by the precomputable scalar `⟨strides, Δ⟩`.
    ///
    /// [`AccessCursor`]: flo_polyhedral::AccessCursor
    pub fn strides(&self, space: &DataSpace) -> Option<Vec<i64>> {
        let m = space.rank();
        match self {
            FileLayout::RowMajor => {
                let mut s = vec![1i64; m];
                for k in (0..m - 1).rev() {
                    s[k] = s[k + 1] * space.extent(k + 1);
                }
                Some(s)
            }
            FileLayout::ColMajor => {
                let mut s = vec![1i64; m];
                for k in 1..m {
                    s[k] = s[k - 1] * space.extent(k - 1);
                }
                Some(s)
            }
            FileLayout::DimPerm(perm) => {
                debug_assert_eq!(perm.len(), m, "DimPerm rank mismatch");
                let mut s = vec![0i64; m];
                let mut acc = 1i64;
                for &k in perm.iter().rev() {
                    s[k] = acc;
                    acc *= space.extent(k);
                }
                Some(s)
            }
            FileLayout::Hierarchical(_) => None,
        }
    }

    /// Offset movement per element-vector step `dir` under a dense
    /// layout (`None` for hierarchical layouts): `⟨strides, dir⟩`.
    pub fn offset_step(&self, space: &DataSpace, dir: &[i64]) -> Option<i64> {
        let s = self.strides(space)?;
        debug_assert_eq!(dir.len(), s.len(), "offset_step rank mismatch");
        Some(s.iter().zip(dir).map(|(&a, &b)| a * b).sum())
    }

    /// The file's extent in elements (equals the array size for dense
    /// layouts; may exceed it for hierarchical layouts with padding
    /// holes).
    pub fn file_elems(&self, space: &DataSpace) -> u64 {
        match self {
            FileLayout::Hierarchical(h) => h.file_elems,
            _ => space.num_elements() as u64,
        }
    }

    /// All dimension permutations of an `m`-dimensional array — the search
    /// space of the profiler-driven reindexing baseline \[27\] ("for a
    /// three-dimensional disk-resident array, six possible file layouts").
    pub fn all_permutations(m: usize) -> Vec<FileLayout> {
        let mut perms = Vec::new();
        let mut cur: Vec<usize> = (0..m).collect();
        heap_permute(&mut cur, m, &mut perms);
        perms.sort();
        perms.into_iter().map(FileLayout::DimPerm).collect()
    }

    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            FileLayout::RowMajor => "row-major".into(),
            FileLayout::ColMajor => "column-major".into(),
            FileLayout::DimPerm(p) => format!("dim-perm{p:?}"),
            FileLayout::Hierarchical(_) => "inter-node hierarchical".into(),
        }
    }

    /// Serialize to JSON — the wire form `flo-serve` layout responses
    /// use. Deterministic: the same layout always renders to the same
    /// bytes (hierarchical tables are emitted in index order).
    pub fn to_json(&self) -> Json {
        match self {
            FileLayout::RowMajor => Json::obj().set("kind", "row-major"),
            FileLayout::ColMajor => Json::obj().set("kind", "col-major"),
            FileLayout::DimPerm(p) => Json::obj().set("kind", "dim-perm").set(
                "perm",
                p.iter().map(|&d| Json::from(d as u64)).collect::<Vec<_>>(),
            ),
            FileLayout::Hierarchical(h) => Json::obj()
                .set("kind", "hierarchical")
                .set("file_elems", h.file_elems)
                .set(
                    "table",
                    h.table.iter().map(|&o| Json::from(o)).collect::<Vec<_>>(),
                ),
        }
    }

    /// A stable 64-bit fingerprint of this layout: FNV-1a over the
    /// deterministic wire form. Equal layouts always fingerprint equal,
    /// and any structural change (a permuted dimension, one table entry)
    /// changes the hash. `flo-store` stamps this into its superblock so
    /// a materialized store can refuse to serve a different layout's
    /// replay.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json().to_string().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Combined fingerprint of a whole program's layout assignment, in
    /// slot order — the layout hash a multi-file store is sealed under.
    pub fn fingerprint_all<'a>(layouts: impl IntoIterator<Item = &'a FileLayout>) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for l in layouts {
            let f = l.fingerprint();
            for b in f.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Inverse of [`FileLayout::to_json`].
    pub fn from_json(json: &Json) -> Result<FileLayout, String> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("layout lacks `kind`")?;
        match kind {
            "row-major" => Ok(FileLayout::RowMajor),
            "col-major" => Ok(FileLayout::ColMajor),
            "dim-perm" => {
                let perm = json
                    .get("perm")
                    .and_then(Json::as_arr)
                    .ok_or("dim-perm layout lacks `perm`")?
                    .iter()
                    .map(|v| v.as_u64().map(|d| d as usize))
                    .collect::<Option<Vec<usize>>>()
                    .ok_or("`perm` entries must be non-negative integers")?;
                Ok(FileLayout::DimPerm(perm))
            }
            "hierarchical" => {
                let file_elems = json
                    .get("file_elems")
                    .and_then(Json::as_u64)
                    .ok_or("hierarchical layout lacks `file_elems`")?;
                let table = json
                    .get("table")
                    .and_then(Json::as_arr)
                    .ok_or("hierarchical layout lacks `table`")?
                    .iter()
                    .map(Json::as_u64)
                    .collect::<Option<Vec<u64>>>()
                    .ok_or("`table` entries must be non-negative integers")?;
                Ok(FileLayout::Hierarchical(HierLayout { table, file_elems }))
            }
            other => Err(format!("unknown layout kind {other:?}")),
        }
    }
}

fn heap_permute(cur: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(cur.clone());
        return;
    }
    for i in 0..k {
        heap_permute(cur, k - 1, out);
        if k.is_multiple_of(2) {
            cur.swap(i, k - 1);
        } else {
            cur.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn space() -> DataSpace {
        DataSpace::new(vec![3, 4])
    }

    #[test]
    fn json_round_trips_every_kind() {
        let layouts = [
            FileLayout::RowMajor,
            FileLayout::ColMajor,
            FileLayout::DimPerm(vec![2, 0, 1]),
            FileLayout::Hierarchical(HierLayout {
                table: vec![0, 4, 1, 5, 2, 6, 3, 7],
                file_elems: 8,
            }),
        ];
        for l in &layouts {
            let back = FileLayout::from_json(&l.to_json()).unwrap();
            assert_eq!(&back, l, "round trip of {}", l.describe());
            // The wire form is deterministic.
            assert_eq!(back.to_json().to_string(), l.to_json().to_string());
        }
        assert!(FileLayout::from_json(&Json::obj().set("kind", "nope")).is_err());
        assert!(FileLayout::from_json(&Json::obj()).is_err());
    }

    #[test]
    fn fingerprints_separate_layouts() {
        let layouts = [
            FileLayout::RowMajor,
            FileLayout::ColMajor,
            FileLayout::DimPerm(vec![0, 1]),
            FileLayout::DimPerm(vec![1, 0]),
            FileLayout::Hierarchical(HierLayout {
                table: vec![0, 2, 1, 3],
                file_elems: 4,
            }),
            FileLayout::Hierarchical(HierLayout {
                table: vec![0, 2, 3, 1],
                file_elems: 4,
            }),
        ];
        let prints: Vec<u64> = layouts.iter().map(FileLayout::fingerprint).collect();
        let distinct: HashSet<u64> = prints.iter().copied().collect();
        assert_eq!(distinct.len(), layouts.len(), "all layouts must differ");
        // Stable across clones and re-serialization.
        for l in &layouts {
            assert_eq!(l.clone().fingerprint(), l.fingerprint());
            let back = FileLayout::from_json(&l.to_json()).unwrap();
            assert_eq!(back.fingerprint(), l.fingerprint());
        }
        // Combined fingerprint is order-sensitive and differs from parts.
        let ab = FileLayout::fingerprint_all([&layouts[0], &layouts[1]]);
        let ba = FileLayout::fingerprint_all([&layouts[1], &layouts[0]]);
        assert_ne!(ab, ba);
        assert_ne!(ab, layouts[0].fingerprint());
    }

    #[test]
    fn row_major_matches_linearize() {
        let s = space();
        assert_eq!(FileLayout::RowMajor.offset_of(&s, &[0, 0]), 0);
        assert_eq!(FileLayout::RowMajor.offset_of(&s, &[0, 3]), 3);
        assert_eq!(FileLayout::RowMajor.offset_of(&s, &[1, 0]), 4);
        assert_eq!(FileLayout::RowMajor.offset_of(&s, &[2, 3]), 11);
    }

    #[test]
    fn col_major_transposes() {
        let s = space();
        assert_eq!(FileLayout::ColMajor.offset_of(&s, &[0, 0]), 0);
        assert_eq!(FileLayout::ColMajor.offset_of(&s, &[1, 0]), 1);
        assert_eq!(FileLayout::ColMajor.offset_of(&s, &[0, 1]), 3);
        assert_eq!(FileLayout::ColMajor.offset_of(&s, &[2, 3]), 11);
    }

    #[test]
    fn dim_perm_identity_is_row_major() {
        let s = space();
        let id = FileLayout::DimPerm(vec![0, 1]);
        let rev = FileLayout::DimPerm(vec![1, 0]);
        for a in [[0i64, 0], [1, 2], [2, 3]] {
            assert_eq!(id.offset_of(&s, &a), FileLayout::RowMajor.offset_of(&s, &a));
            assert_eq!(
                rev.offset_of(&s, &a),
                FileLayout::ColMajor.offset_of(&s, &a)
            );
        }
    }

    #[test]
    fn every_dense_layout_is_a_bijection() {
        let s = DataSpace::new(vec![2, 3, 4]);
        for layout in FileLayout::all_permutations(3) {
            let mut seen = HashSet::new();
            for e in 0..s.num_elements() {
                let a = s.delinearize(e);
                let off = layout.offset_of(&s, &a);
                assert!(off < 24, "offset out of range for {}", layout.describe());
                assert!(
                    seen.insert(off),
                    "duplicate offset for {}",
                    layout.describe()
                );
            }
            assert_eq!(seen.len(), 24);
        }
    }

    #[test]
    fn permutation_count_is_factorial() {
        assert_eq!(FileLayout::all_permutations(1).len(), 1);
        assert_eq!(FileLayout::all_permutations(2).len(), 2);
        assert_eq!(FileLayout::all_permutations(3).len(), 6);
        assert_eq!(FileLayout::all_permutations(4).len(), 24);
    }

    #[test]
    fn permutations_are_distinct() {
        let perms = FileLayout::all_permutations(3);
        let keys: HashSet<String> = perms.iter().map(FileLayout::describe).collect();
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn hierarchical_uses_table() {
        let s = DataSpace::new(vec![2, 2]);
        let layout = FileLayout::Hierarchical(HierLayout {
            table: vec![10, 4, 7, 0],
            file_elems: 11,
        });
        assert_eq!(layout.offset_of(&s, &[0, 0]), 10);
        assert_eq!(layout.offset_of(&s, &[1, 1]), 0);
        assert_eq!(layout.file_elems(&s), 11);
    }

    #[test]
    fn dense_file_extent_equals_array() {
        let s = space();
        assert_eq!(FileLayout::RowMajor.file_elems(&s), 12);
    }

    #[test]
    fn strides_reproduce_offsets() {
        let s = DataSpace::new(vec![3, 4, 5]);
        let mut layouts = FileLayout::all_permutations(3);
        layouts.push(FileLayout::RowMajor);
        layouts.push(FileLayout::ColMajor);
        for layout in &layouts {
            let strides = layout.strides(&s).expect("dense layouts have strides");
            for e in 0..s.num_elements() {
                let a = s.delinearize(e);
                let linear: i64 = strides.iter().zip(&a).map(|(&st, &v)| st * v).sum();
                assert_eq!(
                    linear as u64,
                    layout.offset_of(&s, &a),
                    "strides disagree with offset_of for {}",
                    layout.describe()
                );
            }
        }
    }

    #[test]
    fn offset_step_is_stride_dot_direction() {
        let s = DataSpace::new(vec![4, 6]);
        let layout = FileLayout::RowMajor;
        assert_eq!(layout.offset_step(&s, &[0, 1]), Some(1));
        assert_eq!(layout.offset_step(&s, &[1, 0]), Some(6));
        assert_eq!(layout.offset_step(&s, &[1, -2]), Some(4));
        let hier = FileLayout::Hierarchical(HierLayout {
            table: vec![0],
            file_elems: 1,
        });
        assert_eq!(hier.offset_step(&s, &[0, 1]), None);
        assert_eq!(hier.strides(&s), None);
    }
}
