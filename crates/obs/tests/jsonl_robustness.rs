//! Robustness of the metrics-artifact reader: [`parse_jsonl`] must reject
//! malformed, truncated, and bit-flipped artifacts with a typed error —
//! never a panic. Deterministic SplitMix64 case generation replaces
//! `proptest` (unavailable offline); failures carry a case index for
//! replay.

use flo_json::Json;
use flo_obs::sink::{parse_jsonl, JsonlSink};

/// Minimal SplitMix64 (flo-obs itself is dependency-free, so the test
/// carries its own generator).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn random_artifact(rng: &mut Rng) -> String {
    let mut sink = JsonlSink::new("fuzz");
    for _ in 0..rng.below(6) {
        sink.push(
            "layers",
            Json::obj()
                .set("io_hits", rng.below(1000))
                .set("note", "strings with \"quotes\" and \\ escapes \u{1F600}"),
        );
    }
    sink.render()
}

/// Truncating an artifact at any char boundary either still parses (cut
/// fell on a line boundary past the meta line) or errors cleanly.
#[test]
fn truncated_artifacts_never_panic() {
    let mut rng = Rng(0x7121C);
    for case in 0..200 {
        let text = random_artifact(&mut rng);
        let mut cut = rng.below(text.len() as u64 + 1) as usize;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let sliced = &text[..cut];
        match parse_jsonl(sliced) {
            Ok(events) => {
                // Success means every surviving line was complete JSON and
                // the meta line came through intact.
                assert_eq!(
                    events.len(),
                    sliced.lines().filter(|l| !l.trim().is_empty()).count(),
                    "case {case}"
                );
                assert_eq!(
                    events[0].get("run").and_then(Json::as_str),
                    Some("fuzz"),
                    "case {case}: meta line corrupted yet accepted"
                );
            }
            Err(e) => assert!(!e.is_empty(), "case {case}: empty error message"),
        }
    }
}

/// Flipping a random byte (re-interpreted lossily as UTF-8) never panics
/// the reader; it either still parses or reports which line broke.
#[test]
fn bitflipped_artifacts_never_panic() {
    let mut rng = Rng(0xB17F11B);
    for case in 0..200 {
        let text = random_artifact(&mut rng);
        let mut bytes = text.into_bytes();
        let at = rng.below(bytes.len() as u64) as usize;
        bytes[at] ^= 1 << rng.below(8);
        let corrupted = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_jsonl(&corrupted) {
            assert!(!e.is_empty(), "case {case}");
        }
    }
}

/// Garbage lines, missing meta lines, and wrong versions are typed
/// errors, not panics.
#[test]
fn malformed_artifacts_are_rejected() {
    assert!(parse_jsonl("").is_err(), "empty input has no meta line");
    assert!(parse_jsonl("not json at all\n").is_err());
    assert!(parse_jsonl("{\"event\":\"layers\"}\n").is_err(), "no meta");
    assert!(
        parse_jsonl("{\"event\":\"meta\",\"schema_version\":\"x\"}\n").is_err(),
        "non-numeric version"
    );
    assert!(
        parse_jsonl("{\"event\":\"meta\"}\n").is_err(),
        "missing version"
    );
    // Valid meta, then a torn second line.
    let good = JsonlSink::new("x").render();
    let torn = format!("{good}{{\"event\":\"layers\",");
    let err = parse_jsonl(&torn).unwrap_err();
    assert!(err.contains("line 2"), "error must name the line: {err}");
}
