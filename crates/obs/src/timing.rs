//! Minimal wall-clock benchmarking (replaces `criterion`, which is
//! unavailable in the offline build). Each measurement warms up once,
//! then repeats the closure until a time budget is spent, reporting the
//! mean and minimum iteration time.
//!
//! Moved here from `flo_bench::timing` (whose deprecated shims have
//! since been removed) so coarse phase spans ([`crate::span()`]) and
//! fine-grained iteration timing share one home. Times come from [`Instant`], a monotonic
//! clock, and the mean is computed over the *timed iterations only* —
//! harness bookkeeping between iterations no longer inflates it.

use std::time::{Duration, Instant};

/// One benchmark result.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark label.
    pub label: String,
    /// Number of timed iterations.
    pub iters: u32,
    /// Mean wall-clock time per iteration, in milliseconds.
    pub mean_ms: f64,
    /// Fastest iteration, in milliseconds.
    pub min_ms: f64,
}

impl Measurement {
    /// `label  mean ms (min ms, n iters)` — one printable line.
    pub fn line(&self) -> String {
        format!(
            "{:<40} {:>12.3} ms/iter  (min {:.3} ms, {} iters)",
            self.label, self.mean_ms, self.min_ms, self.iters
        )
    }
}

/// Time `f` repeatedly for roughly `budget` (after one untimed warmup
/// call), capped at `max_iters` iterations.
pub fn measure_with<R>(
    label: &str,
    budget: Duration,
    max_iters: u32,
    mut f: impl FnMut() -> R,
) -> Measurement {
    std::hint::black_box(f());
    let start = Instant::now();
    let mut iters = 0u32;
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    while iters < max_iters && (iters == 0 || start.elapsed() < budget) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        total += dt;
        if dt < min {
            min = dt;
        }
        iters += 1;
    }
    Measurement {
        label: label.to_string(),
        iters,
        mean_ms: total / iters as f64,
        min_ms: min,
    }
}

/// [`measure_with`] under the default budget (300 ms, ≤200 iterations).
pub fn measure<R>(label: &str, f: impl FnMut() -> R) -> Measurement {
    let m = measure_with(label, Duration::from_millis(300), 200, f);
    println!("{}", m.line());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let m = measure_with("spin", Duration::from_millis(5), 50, || {
            std::hint::black_box((0..1000u64).sum::<u64>())
        });
        assert!(m.iters >= 1);
        assert!(m.mean_ms >= 0.0);
        assert!(m.min_ms <= m.mean_ms * 1.01 + f64::EPSILON);
        assert!(m.line().contains("spin"));
    }
}
