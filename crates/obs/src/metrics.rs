//! The collecting [`Observer`] implementation.

use flo_json::Json;

use crate::hist::Hist;
use crate::observer::{FaultEvent, KarmaRoute, Layer, Observer};

/// Counters for one cache (one node within a layer).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Block-level lookups.
    pub accesses: u64,
    /// Block-level hits.
    pub hits: u64,
    /// Element-weighted lookups (coalesced run lengths summed).
    pub weighted_accesses: u64,
    /// Element-weighted hits.
    pub weighted_hits: u64,
    /// Blocks evicted to admit others.
    pub evictions: u64,
}

impl NodeCounters {
    /// Block-level hit ratio (0 when unused).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    fn to_json(&self, node: usize, demotions: Option<u64>) -> Json {
        let mut j = Json::obj()
            .set("node", node)
            .set("accesses", self.accesses)
            .set("hits", self.hits)
            .set("weighted_accesses", self.weighted_accesses)
            .set("weighted_hits", self.weighted_hits)
            .set("evictions", self.evictions);
        if let Some(d) = demotions {
            j = j.set("demotions", d);
        }
        j
    }
}

/// Counters for one disk (one storage node).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiskCounters {
    /// Reads served.
    pub reads: u64,
    /// Reads the elevator window classified as sequential.
    pub sequential: u64,
    /// Total modeled latency, in milliseconds.
    pub latency_ms: f64,
}

/// How many requests KARMA routed to each level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KarmaUtil {
    /// Routed to the I/O (upper) layer.
    pub upper: u64,
    /// Routed to the storage (lower) layer.
    pub lower: u64,
    /// Bypassed both caches.
    pub bypass: u64,
}

/// Tallies of the injected-fault events of a degraded-mode run (all zero
/// on healthy runs and when no fault plan is active).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultCounters {
    /// Node-outage windows entered.
    pub outages: u64,
    /// Requests re-striped away from a dark storage node.
    pub failovers: u64,
    /// Disk reads served by a degraded (straggler) disk.
    pub straggler_reads: u64,
    /// Extra straggler latency charged, in milliseconds.
    pub straggler_ms: f64,
    /// Transient I/O errors absorbed by the retry model.
    pub retries: u64,
    /// Retry backoff/timeout latency charged, in milliseconds.
    pub retry_ms: f64,
    /// Fault-injected cache flushes.
    pub cache_flushes: u64,
    /// Resident blocks lost to cache flushes.
    pub flushed_blocks: u64,
}

impl FaultCounters {
    /// Whether any fault event was recorded.
    pub fn any(&self) -> bool {
        self.outages > 0
            || self.failovers > 0
            || self.straggler_reads > 0
            || self.retries > 0
            || self.cache_flushes > 0
    }

    /// Accumulate another run's counters into this one (suite totals).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.outages += other.outages;
        self.failovers += other.failovers;
        self.straggler_reads += other.straggler_reads;
        self.straggler_ms += other.straggler_ms;
        self.retries += other.retries;
        self.retry_ms += other.retry_ms;
        self.cache_flushes += other.cache_flushes;
        self.flushed_blocks += other.flushed_blocks;
    }

    /// JSON image, as embedded in the metrics artifact's `faults` key.
    pub fn to_json(self) -> Json {
        Json::obj()
            .set("outages", self.outages)
            .set("failovers", self.failovers)
            .set("straggler_reads", self.straggler_reads)
            .set("straggler_ms", self.straggler_ms)
            .set("retries", self.retries)
            .set("retry_ms", self.retry_ms)
            .set("cache_flushes", self.cache_flushes)
            .set("flushed_blocks", self.flushed_blocks)
    }
}

/// Tallies from a real-bytes `flo-store` run: what the materializer
/// wrote and what the replayer actually read (all zero — and absent from
/// artifacts — when the store is unused, so simulation-only runs pay
/// nothing).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StoreCounters {
    /// Blocks the materializer wrote into stripe files.
    pub blocks_materialized: u64,
    /// Bytes written (headers, slots, superblock).
    pub bytes_written: u64,
    /// Data bytes served by verified preads during replay.
    pub bytes_read: u64,
    /// Block-cache evictions across both layers.
    pub evictions: u64,
    /// Dirty buffers written back (materializer write-back mode).
    pub writebacks: u64,
    /// Peak count of dirty buffers resident at once.
    pub dirty_high_water: u64,
    /// Injected transient pread failures absorbed by the retry path.
    pub retries: u64,
    /// Retry backoff latency charged, in (modeled) milliseconds.
    pub retry_ms: f64,
    /// Real elapsed wall-clock time of the replay, in milliseconds.
    pub replay_wall_ms: f64,
}

impl StoreCounters {
    /// Whether any store activity was recorded.
    pub fn any(&self) -> bool {
        self.blocks_materialized > 0
            || self.bytes_written > 0
            || self.bytes_read > 0
            || self.evictions > 0
            || self.writebacks > 0
            || self.retries > 0
    }

    /// Accumulate another run's counters into this one (suite totals).
    pub fn merge(&mut self, other: &StoreCounters) {
        self.blocks_materialized += other.blocks_materialized;
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.dirty_high_water = self.dirty_high_water.max(other.dirty_high_water);
        self.retries += other.retries;
        self.retry_ms += other.retry_ms;
        self.replay_wall_ms += other.replay_wall_ms;
    }

    /// JSON image, as embedded in the metrics artifact's `store` key.
    pub fn to_json(self) -> Json {
        Json::obj()
            .set("blocks_materialized", self.blocks_materialized)
            .set("bytes_written", self.bytes_written)
            .set("bytes_read", self.bytes_read)
            .set("evictions", self.evictions)
            .set("writebacks", self.writebacks)
            .set("dirty_high_water", self.dirty_high_water)
            .set("retries", self.retries)
            .set("retry_ms", self.retry_ms)
            .set("replay_wall_ms", self.replay_wall_ms)
    }
}

/// One end-of-run per-set occupancy snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// Which layer the cache sits at.
    pub layer: Layer,
    /// Node index within the layer.
    pub node: usize,
    /// Resident blocks per set.
    pub per_set: Vec<u32>,
}

/// An [`Observer`] that accumulates everything the simulator reports:
/// per-layer per-node counters, disk seek/sequential breakdowns, KARMA
/// routing utilization, a stack-distance histogram and per-set occupancy
/// snapshots. [`MetricsObserver::to_json`] renders the lot as the
/// `layers` event of a metrics artifact.
#[derive(Clone, Debug, Default)]
pub struct MetricsObserver {
    /// I/O-layer caches, indexed by node (grown on demand).
    pub io: Vec<NodeCounters>,
    /// Storage-layer caches, indexed by node.
    pub storage: Vec<NodeCounters>,
    /// DEMOTE-LRU demotions out of each I/O node.
    pub demotions: Vec<u64>,
    /// Disks, indexed by storage node.
    pub disks: Vec<DiskCounters>,
    /// KARMA routing tallies.
    pub karma: KarmaUtil,
    /// Histogram of observed stack distances (warm accesses only).
    pub stack: Hist,
    /// Cold (first-touch) accesses seen by the sweep engine.
    pub cold: u64,
    /// End-of-run occupancy snapshots.
    pub occupancy: Vec<OccupancySnapshot>,
    /// Injected-fault tallies (degraded-mode runs).
    pub faults: FaultCounters,
    /// Real-bytes store tallies (set by the harness after a measured
    /// run; all-zero and omitted from JSON on simulation-only runs).
    pub store: StoreCounters,
}

fn at<T: Default + Clone>(v: &mut Vec<T>, i: usize) -> &mut T {
    if v.len() <= i {
        v.resize(i + 1, T::default());
    }
    &mut v[i]
}

impl MetricsObserver {
    /// A fresh, empty collector.
    pub fn new() -> MetricsObserver {
        MetricsObserver::default()
    }

    fn layer_mut(&mut self, layer: Layer) -> &mut Vec<NodeCounters> {
        match layer {
            Layer::Io => &mut self.io,
            Layer::Storage => &mut self.storage,
        }
    }

    /// Layer-wide totals: summed counters across a layer's nodes.
    pub fn layer_totals(&self, layer: Layer) -> NodeCounters {
        let nodes = match layer {
            Layer::Io => &self.io,
            Layer::Storage => &self.storage,
        };
        let mut total = NodeCounters::default();
        for n in nodes {
            total.accesses += n.accesses;
            total.hits += n.hits;
            total.weighted_accesses += n.weighted_accesses;
            total.weighted_hits += n.weighted_hits;
            total.evictions += n.evictions;
        }
        total
    }

    /// Total disk reads across all storage nodes.
    pub fn disk_reads(&self) -> u64 {
        self.disks.iter().map(|d| d.reads).sum()
    }

    /// The `layers` event payload: everything this observer collected.
    pub fn to_json(&self) -> Json {
        let io: Vec<Json> = self
            .io
            .iter()
            .enumerate()
            .map(|(n, c)| c.to_json(n, Some(self.demotions.get(n).copied().unwrap_or(0))))
            .collect();
        let storage: Vec<Json> = self
            .storage
            .iter()
            .enumerate()
            .map(|(n, c)| c.to_json(n, None))
            .collect();
        let disks: Vec<Json> = self
            .disks
            .iter()
            .enumerate()
            .map(|(n, d)| {
                Json::obj()
                    .set("node", n)
                    .set("reads", d.reads)
                    .set("sequential", d.sequential)
                    .set("latency_ms", d.latency_ms)
            })
            .collect();
        let occupancy: Vec<Json> = self
            .occupancy
            .iter()
            .map(|o| {
                Json::obj()
                    .set("layer", o.layer.name())
                    .set("node", o.node)
                    .set(
                        "sets",
                        o.per_set.iter().map(|&s| u64::from(s)).collect::<Vec<_>>(),
                    )
            })
            .collect();
        let mut j = Json::obj()
            .set("io", Json::Arr(io))
            .set("storage", Json::Arr(storage))
            .set("disks", Json::Arr(disks))
            .set(
                "karma",
                Json::obj()
                    .set("upper", self.karma.upper)
                    .set("lower", self.karma.lower)
                    .set("bypass", self.karma.bypass),
            )
            .set(
                "stack_distance",
                self.stack.to_json().set("cold", self.cold),
            )
            .set("occupancy", Json::Arr(occupancy))
            .set("faults", self.faults.to_json());
        if self.store.any() {
            j = j.set("store", self.store.to_json());
        }
        j
    }
}

impl Observer for MetricsObserver {
    fn cache_access(&mut self, layer: Layer, node: usize, hit: bool, weight: u32) {
        let c = at(self.layer_mut(layer), node);
        c.accesses += 1;
        c.weighted_accesses += u64::from(weight);
        if hit {
            c.hits += 1;
            c.weighted_hits += u64::from(weight);
        }
    }

    fn eviction(&mut self, layer: Layer, node: usize) {
        at(self.layer_mut(layer), node).evictions += 1;
    }

    fn demotion(&mut self, node: usize) {
        *at(&mut self.demotions, node) += 1;
    }

    fn disk_read(&mut self, node: usize, sequential: bool, latency_ms: f64) {
        let d = at(&mut self.disks, node);
        d.reads += 1;
        if sequential {
            d.sequential += 1;
        }
        d.latency_ms += latency_ms;
    }

    fn karma_route(&mut self, route: KarmaRoute) {
        match route {
            KarmaRoute::Upper => self.karma.upper += 1,
            KarmaRoute::Lower => self.karma.lower += 1,
            KarmaRoute::Bypass => self.karma.bypass += 1,
        }
    }

    fn stack_distance(&mut self, dist: Option<u64>) {
        match dist {
            Some(d) => self.stack.record(d),
            None => self.cold += 1,
        }
    }

    fn occupancy(&mut self, layer: Layer, node: usize, per_set: &[u32]) {
        self.occupancy.push(OccupancySnapshot {
            layer,
            node,
            per_set: per_set.to_vec(),
        });
    }

    fn fault(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::Outage { .. } => self.faults.outages += 1,
            FaultEvent::Failover { .. } => self.faults.failovers += 1,
            FaultEvent::StragglerRead { extra_ms, .. } => {
                self.faults.straggler_reads += 1;
                self.faults.straggler_ms += extra_ms;
            }
            FaultEvent::Retry { wait_ms, .. } => {
                self.faults.retries += 1;
                self.faults.retry_ms += wait_ms;
            }
            FaultEvent::CacheFlush { blocks, .. } => {
                self.faults.cache_flushes += 1;
                self.faults.flushed_blocks += blocks as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_all_event_kinds() {
        let mut m = MetricsObserver::new();
        m.cache_access(Layer::Io, 1, true, 4);
        m.cache_access(Layer::Io, 1, false, 2);
        m.cache_access(Layer::Storage, 0, false, 1);
        m.eviction(Layer::Storage, 0);
        m.demotion(1);
        m.disk_read(0, true, 3.5);
        m.disk_read(0, false, 9.0);
        m.karma_route(KarmaRoute::Upper);
        m.karma_route(KarmaRoute::Bypass);
        m.stack_distance(Some(5));
        m.stack_distance(None);
        m.occupancy(Layer::Io, 1, &[2, 0, 1]);
        m.fault(FaultEvent::Outage { node: 0 });
        m.fault(FaultEvent::Failover { from: 0, to: 1 });
        m.fault(FaultEvent::StragglerRead {
            node: 1,
            extra_ms: 4.5,
        });
        m.fault(FaultEvent::Retry {
            node: 1,
            attempt: 0,
            wait_ms: 2.0,
        });
        m.fault(FaultEvent::CacheFlush {
            layer: Layer::Io,
            node: 0,
            blocks: 7,
        });

        assert_eq!(m.io[1].accesses, 2);
        assert_eq!(m.io[1].hits, 1);
        assert_eq!(m.io[1].weighted_accesses, 6);
        assert_eq!(m.io[1].weighted_hits, 4);
        assert!((m.io[1].hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(m.io[0], NodeCounters::default(), "untouched node stays 0");
        assert_eq!(m.storage[0].evictions, 1);
        assert_eq!(m.demotions[1], 1);
        assert_eq!(m.disks[0].reads, 2);
        assert_eq!(m.disks[0].sequential, 1);
        assert!((m.disks[0].latency_ms - 12.5).abs() < 1e-12);
        assert_eq!(
            m.karma,
            KarmaUtil {
                upper: 1,
                lower: 0,
                bypass: 1
            }
        );
        assert_eq!(m.stack.count(), 1);
        assert_eq!(m.cold, 1);
        assert_eq!(m.occupancy[0].per_set, vec![2, 0, 1]);
        assert_eq!(m.disk_reads(), 2);
        assert_eq!(m.layer_totals(Layer::Io).accesses, 2);
        assert!(m.faults.any());
        assert_eq!(m.faults.outages, 1);
        assert_eq!(m.faults.failovers, 1);
        assert_eq!(m.faults.straggler_reads, 1);
        assert!((m.faults.straggler_ms - 4.5).abs() < 1e-12);
        assert_eq!(m.faults.retries, 1);
        assert!((m.faults.retry_ms - 2.0).abs() < 1e-12);
        assert_eq!(m.faults.cache_flushes, 1);
        assert_eq!(m.faults.flushed_blocks, 7);
    }

    #[test]
    fn store_counters_merge_and_gate_json() {
        let mut m = MetricsObserver::new();
        m.cache_access(Layer::Io, 0, true, 1);
        assert!(!m.store.any());
        assert!(
            m.to_json().get("store").is_none(),
            "simulation-only artifacts must not carry a store key"
        );

        let mut a = StoreCounters {
            blocks_materialized: 10,
            bytes_written: 640,
            bytes_read: 320,
            evictions: 3,
            writebacks: 2,
            dirty_high_water: 5,
            retries: 1,
            retry_ms: 10.0,
            replay_wall_ms: 4.0,
        };
        let b = StoreCounters {
            dirty_high_water: 9,
            bytes_read: 64,
            ..StoreCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.bytes_read, 384);
        assert_eq!(a.dirty_high_water, 9, "high water merges by max");
        assert!(a.any());

        m.store = a;
        let j = m.to_json();
        let s = j.get("store").expect("store key present once active");
        assert_eq!(s.get("writebacks").and_then(Json::as_f64), Some(2.0));
        assert!(flo_json::parse(&j.to_string()).is_ok());
    }

    #[test]
    fn json_payload_is_parseable() {
        let mut m = MetricsObserver::new();
        m.cache_access(Layer::Io, 0, true, 1);
        m.disk_read(0, false, 8.0);
        let j = m.to_json();
        assert!(flo_json::parse(&j.to_string()).is_ok());
        let io = j.get("io").and_then(Json::as_arr).unwrap();
        assert_eq!(io[0].get("hits").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            j.get("stack_distance")
                .and_then(|s| s.get("cold"))
                .and_then(Json::as_f64),
            Some(0.0)
        );
    }
}
