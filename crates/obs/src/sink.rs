//! Structured JSONL metrics artifacts and the `FLO_METRICS` toggle.
//!
//! A metrics artifact is a JSON-Lines file: one compact JSON object per
//! line, each with an `"event"` tag. The first line is always a `meta`
//! event carrying [`SCHEMA_VERSION`] and the run name; `flostat` (and
//! [`parse_jsonl`]) reject files whose version does not match instead of
//! misparsing them.

use std::path::Path;
use std::sync::OnceLock;

use flo_json::Json;

/// Version of the metrics event schema. Bump on any incompatible change
/// to event shapes; readers reject mismatched artifacts.
pub const SCHEMA_VERSION: u32 = 1;

/// What `FLO_METRICS` asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsMode {
    /// Collect metrics and write JSONL artifacts under `results/metrics/`.
    Jsonl,
    /// No collection (the default): observers stay null, spans no-op.
    Off,
}

/// The process-wide metrics mode, read once from `FLO_METRICS`
/// (`jsonl` or `off`; unset means off, anything else warns and means off).
pub fn metrics_mode() -> MetricsMode {
    static MODE: OnceLock<MetricsMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("FLO_METRICS").as_deref() {
        Ok("jsonl") => MetricsMode::Jsonl,
        Ok("off") | Ok("") | Err(_) => MetricsMode::Off,
        Ok(other) => {
            eprintln!("FLO_METRICS={other} not recognized (use jsonl|off); metrics stay off");
            MetricsMode::Off
        }
    })
}

/// An in-memory JSONL artifact under construction.
#[derive(Clone, Debug)]
pub struct JsonlSink {
    events: Vec<Json>,
}

impl JsonlSink {
    /// Start an artifact for the run named `run` (e.g. `"fig7c-lru"`).
    /// The meta event is the first line.
    pub fn new(run: &str) -> JsonlSink {
        JsonlSink {
            events: vec![Json::obj()
                .set("event", "meta")
                .set("schema_version", u64::from(SCHEMA_VERSION))
                .set("run", run)],
        }
    }

    /// Append `payload` as an event line tagged `kind`. The tag is
    /// prepended so every line starts `{"event":"<kind>",...}`.
    pub fn push(&mut self, kind: &str, payload: Json) {
        let mut fields = vec![("event".to_string(), Json::from(kind))];
        match payload {
            Json::Obj(rest) => fields.extend(rest),
            other => fields.push(("payload".to_string(), other)),
        }
        self.events.push(Json::Obj(fields));
    }

    /// Events so far, meta line first.
    pub fn events(&self) -> &[Json] {
        &self.events
    }

    /// Render to JSON-Lines text (one compact object per line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Write the artifact to `path`, creating parent directories.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.render())
    }
}

/// Parse JSONL text back into events, validating the meta line's schema
/// version. Blank lines are ignored.
pub fn parse_jsonl(text: &str) -> Result<Vec<Json>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = flo_json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(v);
    }
    let meta = events
        .first()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("meta"))
        .ok_or("missing meta line (not a flo metrics artifact?)")?;
    let version = meta
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("meta line lacks schema_version")?;
    if version != f64::from(SCHEMA_VERSION) {
        return Err(format!(
            "schema_version {version} unsupported (this build reads {SCHEMA_VERSION})"
        ));
    }
    Ok(events)
}

/// Prepend a `schema_version` field to a JSON artifact object, so plain
/// `.json` artifacts (tables, BENCH files) carry the same version tag as
/// JSONL metrics.
pub fn with_schema_version(json: Json) -> Json {
    let mut fields = vec![(
        "schema_version".to_string(),
        Json::from(u64::from(SCHEMA_VERSION)),
    )];
    match json {
        Json::Obj(rest) => fields.extend(rest),
        other => fields.push(("payload".to_string(), other)),
    }
    Json::Obj(fields)
}

/// Write a pretty-printed, version-tagged JSON artifact to `path`,
/// creating parent directories.
pub fn write_json_artifact(path: &Path, json: Json) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, with_schema_version(json).pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_round_trips() {
        let mut sink = JsonlSink::new("unit");
        sink.push("layers", Json::obj().set("io_hits", 3u64));
        sink.push("scalar", Json::from(7u64));
        let text = sink.render();
        assert_eq!(text.lines().count(), 3);
        let events = parse_jsonl(&text).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("run").and_then(Json::as_str), Some("unit"));
        assert_eq!(
            events[1].get("event").and_then(Json::as_str),
            Some("layers")
        );
        assert_eq!(events[1].get("io_hits").and_then(Json::as_f64), Some(3.0));
        assert_eq!(events[2].get("payload").and_then(Json::as_f64), Some(7.0));
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let bad = format!(
            "{}\n",
            Json::obj()
                .set("event", "meta")
                .set("schema_version", 999u64)
                .set("run", "x")
        );
        let err = parse_jsonl(&bad).unwrap_err();
        assert!(err.contains("999"), "{err}");
        assert!(parse_jsonl("{\"event\":\"layers\"}\n").is_err());
        assert!(parse_jsonl("not json\n").is_err());
    }

    #[test]
    fn version_tagging_json_artifacts() {
        let tagged = with_schema_version(Json::obj().set("n", 1u64));
        assert_eq!(
            tagged.get("schema_version").and_then(Json::as_f64),
            Some(f64::from(SCHEMA_VERSION))
        );
        assert_eq!(tagged.get("n").and_then(Json::as_f64), Some(1.0));
        match &tagged {
            Json::Obj(fields) => assert_eq!(fields[0].0, "schema_version"),
            _ => unreachable!(),
        }
    }
}
