//! Request-level telemetry for the serve tier: per-work-kind stage
//! latency histograms, a bounded ring of recent request summaries, and
//! the snapshot/merge/rendering machinery behind the `telemetry`
//! protocol request, `flotop` and the Prometheus text endpoint.
//!
//! **Cost model.** The accumulator is written from the daemon's hottest
//! threads — the event thread stamps inline answers and completions,
//! workers never touch it (they only carry timestamps). Updates go
//! through a small set of sharded mutexes: each thread is pinned to one
//! shard on first use (round-robin, cached in a thread-local), so the
//! event thread and every worker effectively own private shards and an
//! update is an uncontended lock around a handful of integer adds —
//! tens of nanoseconds against requests that cost microseconds to parse
//! and milliseconds to execute. `servebench --telemetry-gate` holds the
//! whole layer to ≥0.97× telemetry-off warm throughput.
//!
//! **Quantiles.** Stage and total latencies accumulate into log2-bucketed
//! [`Hist`]s (microseconds); p50/p95/p99 are estimated by cumulative
//! bucket walk with linear interpolation inside the hit bucket
//! ([`Hist::quantile`]). The 2× relative error bound of power-of-two
//! buckets is the deliberate trade: tail latencies are order-of-magnitude
//! signals, and fixed bucket edges are what make per-node histograms
//! mergeable into exact cluster-wide distributions ([`merge_snapshots`]).
//!
//! Snapshots are plain JSON (schema-versioned via the `v` field) so the
//! cluster client can fan them out, merge them, and render them without
//! this crate knowing anything about the wire protocol.

use crate::hist::Hist;
use flo_json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Version of the telemetry snapshot schema (the `v` field). Bump on
/// any incompatible change; [`merge_snapshots`] refuses to mix versions.
pub const TELEMETRY_VERSION: u64 = 1;

/// The lifecycle stages stamped on every request, in pipeline order.
/// `parse` is frame-to-envelope on the event thread; `queue` is
/// enqueue-to-worker-pop; `exec` is the service execution (zero for
/// inline answers); `serialize` is response-envelope construction;
/// `flush` is completion-push-to-event-loop-delivery.
pub const STAGES: [&str; 5] = [
    "parse_us",
    "queue_us",
    "exec_us",
    "serialize_us",
    "flush_us",
];

/// Cache-probe outcome labels: `inline` (event-thread response-cache
/// hit, no queue), `warm` (worker-side response-cache hit), `dedup`
/// (absorbed by server-side single-flight — another worker was already
/// computing the same work key), `miss` (executed).
pub const CACHE_OUTCOMES: [&str; 4] = ["inline", "warm", "dedup", "miss"];

/// Per-stage microsecond timings of one request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageSample {
    /// Frame parse + envelope validation (event thread).
    pub parse_us: u64,
    /// Time between enqueue and a worker popping the job.
    pub queue_us: u64,
    /// Service execution inside the worker.
    pub exec_us: u64,
    /// Response-envelope construction (splice or serialize).
    pub serialize_us: u64,
    /// Completion push to event-loop delivery (the write-back handoff).
    pub flush_us: u64,
}

impl StageSample {
    /// The stages as an array parallel to [`STAGES`].
    pub fn as_array(&self) -> [u64; 5] {
        [
            self.parse_us,
            self.queue_us,
            self.exec_us,
            self.serialize_us,
            self.flush_us,
        ]
    }

    /// End-to-end server-side latency: the sum of the stages.
    pub fn total_us(&self) -> u64 {
        self.as_array().iter().sum()
    }
}

/// One request's summary, as held in the recent-requests ring.
#[derive(Clone, Debug)]
pub struct RequestSummary {
    /// The request's trace id (client-assigned, or the server's
    /// fallback).
    pub trace: u64,
    /// The request's envelope id.
    pub id: u64,
    /// The request kind (`simulate`, `layout`, `ping`, ...).
    pub kind: &'static str,
    /// The application label (`-` for control requests).
    pub app: String,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Cache-probe outcome, one of [`CACHE_OUTCOMES`].
    pub cache: &'static str,
    /// Per-stage timings.
    pub stages: StageSample,
}

impl RequestSummary {
    fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .set("trace", self.trace)
            .set("id", self.id)
            .set("kind", self.kind)
            .set("app", self.app.as_str())
            .set("ok", self.ok)
            .set("cache", self.cache)
            .set("total_us", self.stages.total_us());
        for (name, v) in STAGES.iter().zip(self.stages.as_array()) {
            j = j.set(name, v);
        }
        j
    }
}

/// Per-kind accumulated stats: counts, cache outcomes, total and
/// per-stage latency histograms.
#[derive(Default)]
struct KindStats {
    count: u64,
    errors: u64,
    cache: [u64; 4],
    total: Hist,
    stages: [Hist; 5],
}

impl KindStats {
    fn record(&mut self, s: &RequestSummary) {
        self.count += 1;
        if !s.ok {
            self.errors += 1;
        }
        if let Some(i) = CACHE_OUTCOMES.iter().position(|&c| c == s.cache) {
            self.cache[i] += 1;
        }
        self.total.record(s.stages.total_us());
        for (h, v) in self.stages.iter_mut().zip(s.stages.as_array()) {
            h.record(v);
        }
    }

    fn merge(&mut self, other: &KindStats) {
        self.count += other.count;
        self.errors += other.errors;
        for (a, b) in self.cache.iter_mut().zip(&other.cache) {
            *a += b;
        }
        self.total.merge(&other.total);
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.merge(b);
        }
    }

    fn to_json(&self) -> Json {
        let mut cache = Json::obj();
        for (name, v) in CACHE_OUTCOMES.iter().zip(self.cache) {
            cache = cache.set(name, v);
        }
        let mut stages = Json::obj();
        for (name, h) in STAGES.iter().zip(&self.stages) {
            stages = stages.set(name, h.to_json());
        }
        Json::obj()
            .set("count", self.count)
            .set("errors", self.errors)
            .set("cache", cache)
            .set("total_us", self.total.to_json())
            .set("stages", stages)
    }
}

/// One accumulator shard: the per-kind table plus the event-loop gauges
/// (kept per shard so the event thread updates them without crossing
/// into another thread's lock).
#[derive(Default)]
struct Shard {
    /// Tiny and scanned linearly: a daemon sees at most the handful of
    /// protocol kinds, and a 7-entry scan beats hashing.
    kinds: Vec<(&'static str, KindStats)>,
    tick_us: Hist,
    queue_depth: Hist,
}

impl Shard {
    fn kind_mut(&mut self, kind: &'static str) -> &mut KindStats {
        if let Some(i) = self.kinds.iter().position(|(k, _)| *k == kind) {
            return &mut self.kinds[i].1;
        }
        self.kinds.push((kind, KindStats::default()));
        &mut self.kinds.last_mut().expect("just pushed").1
    }
}

/// How many recent-request summaries the snapshot reports (the
/// slowest-N list).
pub const SLOWEST_N: usize = 8;

const SHARDS: usize = 8;

/// The telemetry accumulator: sharded per-kind stage histograms plus a
/// bounded ring of recent request summaries. One instance lives for the
/// daemon's lifetime; every method takes `&self` and is safe from any
/// thread.
pub struct Telemetry {
    shards: Vec<Mutex<Shard>>,
    ring: Mutex<VecDeque<RequestSummary>>,
    ring_cap: usize,
}

impl Telemetry {
    /// An accumulator whose recent-requests ring holds `ring_cap`
    /// summaries (0 disables the ring; histograms still accumulate).
    pub fn new(ring_cap: usize) -> Telemetry {
        Telemetry {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            ring: Mutex::new(VecDeque::with_capacity(ring_cap.min(4096))),
            ring_cap,
        }
    }

    /// The calling thread's shard: assigned round-robin on first use and
    /// cached in a thread-local, so a daemon's event thread and each
    /// worker land on distinct shards (uncontended locks) as long as the
    /// thread count stays near the shard count.
    fn shard(&self) -> &Mutex<Shard> {
        use std::cell::Cell;
        thread_local! {
            static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let i = SHARD.with(|s| {
            let mut v = s.get();
            if v == usize::MAX {
                v = NEXT.fetch_add(1, Ordering::Relaxed);
                s.set(v);
            }
            v
        });
        &self.shards[i % self.shards.len()]
    }

    /// Record one finished request: fold it into the calling thread's
    /// shard and push its summary onto the recent ring (two short,
    /// effectively uncontended lock acquisitions).
    pub fn record(&self, summary: RequestSummary) {
        self.shard()
            .lock()
            .unwrap()
            .kind_mut(summary.kind)
            .record(&summary);
        if self.ring_cap > 0 {
            let mut ring = self.ring.lock().unwrap();
            if ring.len() >= self.ring_cap {
                ring.pop_front();
            }
            ring.push_back(summary);
        }
    }

    /// Record one event-loop tick's busy duration (ticks that did work;
    /// idle wakeups are not interesting).
    pub fn record_tick(&self, us: u64) {
        self.shard().lock().unwrap().tick_us.record(us);
    }

    /// Record the job-queue depth observed at an enqueue.
    pub fn record_queue_depth(&self, depth: u64) {
        self.shard().lock().unwrap().queue_depth.record(depth);
    }

    /// Fold every shard into one per-kind table plus the event-loop
    /// histograms.
    fn merged(&self) -> (Vec<(&'static str, KindStats)>, Hist, Hist) {
        let mut kinds: Vec<(&'static str, KindStats)> = Vec::new();
        let mut tick = Hist::new();
        let mut depth = Hist::new();
        for shard in &self.shards {
            let s = shard.lock().unwrap();
            tick.merge(&s.tick_us);
            depth.merge(&s.queue_depth);
            for (k, stats) in &s.kinds {
                match kinds.iter_mut().find(|(name, _)| name == k) {
                    Some((_, agg)) => agg.merge(stats),
                    None => {
                        let mut fresh = KindStats::default();
                        fresh.merge(stats);
                        kinds.push((k, fresh));
                    }
                }
            }
        }
        kinds.sort_by_key(|(k, _)| *k);
        (kinds, tick, depth)
    }

    /// The full snapshot: schema version, per-kind quantiles and stage
    /// breakdowns, cache outcomes, event-loop tick/queue-depth
    /// histograms, and the slowest-[`SLOWEST_N`] recent requests.
    pub fn snapshot(&self) -> Json {
        let (kinds, tick, depth) = self.merged();
        let mut kinds_json = Json::obj();
        for (k, stats) in &kinds {
            kinds_json = kinds_json.set(k, stats.to_json());
        }
        let mut recent: Vec<RequestSummary> = self.ring.lock().unwrap().iter().cloned().collect();
        recent.sort_by_key(|s| std::cmp::Reverse(s.stages.total_us()));
        recent.truncate(SLOWEST_N);
        Json::obj()
            .set("v", TELEMETRY_VERSION)
            .set("kinds", kinds_json)
            .set(
                "event_loop",
                Json::obj()
                    .set("tick_us", tick.to_json())
                    .set("queue_depth", depth.to_json()),
            )
            .set(
                "slowest",
                recent
                    .iter()
                    .map(RequestSummary::to_json)
                    .collect::<Vec<Json>>(),
            )
    }

    /// The per-kind total-latency histograms alone — what the daemon
    /// folds into its `stats` response so `floq stats --cluster` can
    /// merge latency distributions next to the summed gauges.
    pub fn latency_json(&self) -> Json {
        let (kinds, _, _) = self.merged();
        let mut out = Json::obj();
        for (k, stats) in &kinds {
            out = out.set(k, stats.total.to_json());
        }
        out
    }
}

impl KindStats {
    /// Rebuild from the [`KindStats::to_json`] rendering. Tolerant of a
    /// missing `cache`/`stages` sub-object (treated as empty) but not of
    /// corrupt histograms — those drop to empty, keeping the merge total
    /// rather than failing the whole snapshot.
    fn from_json(j: &Json) -> KindStats {
        let mut s = KindStats {
            count: j.get("count").and_then(Json::as_u64).unwrap_or(0),
            errors: j.get("errors").and_then(Json::as_u64).unwrap_or(0),
            ..KindStats::default()
        };
        if let Some(cache) = j.get("cache") {
            for (slot, name) in s.cache.iter_mut().zip(CACHE_OUTCOMES) {
                *slot = cache.get(name).and_then(Json::as_u64).unwrap_or(0);
            }
        }
        if let Some(h) = j.get("total_us").and_then(Hist::from_json) {
            s.total = h;
        }
        if let Some(stages) = j.get("stages") {
            for (slot, name) in s.stages.iter_mut().zip(STAGES) {
                if let Some(h) = stages.get(name).and_then(Hist::from_json) {
                    *slot = h;
                }
            }
        }
        s
    }
}

/// Merge per-node telemetry snapshots into one cluster-wide snapshot:
/// counts sum, histograms [`Hist::merge`] bucket-wise (so the merged
/// quantiles are exactly the quantiles of the union of samples, up to
/// bucket resolution), and the `slowest` lists interleave, keeping the
/// overall slowest [`SLOWEST_N`] with each entry tagged by its node id.
/// Snapshots whose `v` is not [`TELEMETRY_VERSION`] are skipped (a
/// mixed-version cluster degrades to the nodes we understand).
pub fn merge_snapshots(snaps: &[(String, Json)]) -> Json {
    let mut kinds: Vec<(String, KindStats)> = Vec::new();
    let mut tick = Hist::new();
    let mut depth = Hist::new();
    let mut slowest: Vec<(u64, Json)> = Vec::new();
    for (node, snap) in snaps {
        if snap.get("v").and_then(Json::as_u64) != Some(TELEMETRY_VERSION) {
            continue;
        }
        if let Some(Json::Obj(entries)) = snap.get("kinds") {
            for (kind, stats) in entries {
                let theirs = KindStats::from_json(stats);
                match kinds.iter_mut().find(|(k, _)| k == kind) {
                    Some((_, agg)) => agg.merge(&theirs),
                    None => kinds.push((kind.clone(), theirs)),
                }
            }
        }
        if let Some(ev) = snap.get("event_loop") {
            if let Some(h) = ev.get("tick_us").and_then(Hist::from_json) {
                tick.merge(&h);
            }
            if let Some(h) = ev.get("queue_depth").and_then(Hist::from_json) {
                depth.merge(&h);
            }
        }
        if let Some(list) = snap.get("slowest").and_then(Json::as_arr) {
            for entry in list {
                let total = entry.get("total_us").and_then(Json::as_u64).unwrap_or(0);
                let tagged = match entry.get("node") {
                    Some(_) => entry.clone(),
                    None => entry.clone().set("node", node.as_str()),
                };
                slowest.push((total, tagged));
            }
        }
    }
    slowest.sort_by_key(|(total, _)| std::cmp::Reverse(*total));
    slowest.truncate(SLOWEST_N);
    let mut kinds_json = Json::obj();
    kinds.sort_by(|(a, _), (b, _)| a.cmp(b));
    for (k, stats) in kinds {
        kinds_json = kinds_json.set(k.as_str(), stats.to_json());
    }
    Json::obj()
        .set("v", TELEMETRY_VERSION)
        .set("nodes_merged", snaps.len() as u64)
        .set("kinds", kinds_json)
        .set(
            "event_loop",
            Json::obj()
                .set("tick_us", tick.to_json())
                .set("queue_depth", depth.to_json()),
        )
        .set(
            "slowest",
            slowest.into_iter().map(|(_, j)| j).collect::<Vec<Json>>(),
        )
}

fn prom_hist(out: &mut String, metric: &str, labels: &str, j: &Json) {
    let comma = if labels.is_empty() { "" } else { "," };
    for (q, name) in [("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")] {
        if let Some(v) = j.get(q).and_then(Json::as_u64) {
            out.push_str(&format!(
                "{metric}{{{labels}{comma}quantile=\"{name}\"}} {v}\n"
            ));
        }
    }
    let count = j.get("count").and_then(Json::as_u64).unwrap_or(0);
    let sum = j.get("sum").and_then(Json::as_u64).unwrap_or(0);
    out.push_str(&format!("{metric}_count{{{labels}}} {count}\n"));
    out.push_str(&format!("{metric}_sum{{{labels}}} {sum}\n"));
}

/// Render a telemetry snapshot (per-node or merged) as Prometheus-style
/// text: `flo_requests_total`, `flo_request_errors_total`,
/// `flo_cache_outcomes_total`, quantile-labelled summaries for total and
/// per-stage durations, and the event-loop gauges. Pure text generation
/// from the snapshot JSON, so the cluster-merged snapshot renders
/// through the same path as a single node's.
pub fn render_prometheus(snap: &Json) -> String {
    let mut out = String::new();
    out.push_str("# TYPE flo_requests_total counter\n");
    out.push_str("# TYPE flo_request_duration_us summary\n");
    out.push_str("# TYPE flo_stage_duration_us summary\n");
    if let Some(Json::Obj(kinds)) = snap.get("kinds") {
        for (kind, stats) in kinds {
            let count = stats.get("count").and_then(Json::as_u64).unwrap_or(0);
            let errors = stats.get("errors").and_then(Json::as_u64).unwrap_or(0);
            out.push_str(&format!("flo_requests_total{{kind=\"{kind}\"}} {count}\n"));
            out.push_str(&format!(
                "flo_request_errors_total{{kind=\"{kind}\"}} {errors}\n"
            ));
            if let Some(cache) = stats.get("cache") {
                for outcome in CACHE_OUTCOMES {
                    let v = cache.get(outcome).and_then(Json::as_u64).unwrap_or(0);
                    out.push_str(&format!(
                        "flo_cache_outcomes_total{{kind=\"{kind}\",outcome=\"{outcome}\"}} {v}\n"
                    ));
                }
            }
            if let Some(total) = stats.get("total_us") {
                prom_hist(
                    &mut out,
                    "flo_request_duration_us",
                    &format!("kind=\"{kind}\""),
                    total,
                );
            }
            if let Some(stages) = stats.get("stages") {
                for stage in STAGES {
                    let label = stage.trim_end_matches("_us");
                    if let Some(h) = stages.get(stage) {
                        prom_hist(
                            &mut out,
                            "flo_stage_duration_us",
                            &format!("kind=\"{kind}\",stage=\"{label}\""),
                            h,
                        );
                    }
                }
            }
        }
    }
    if let Some(ev) = snap.get("event_loop") {
        if let Some(t) = ev.get("tick_us") {
            prom_hist(&mut out, "flo_event_loop_tick_us", "", t);
        }
        if let Some(d) = ev.get("queue_depth") {
            prom_hist(&mut out, "flo_queue_depth", "", d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(trace: u64, kind: &'static str, exec_us: u64, ok: bool) -> RequestSummary {
        RequestSummary {
            trace,
            id: trace,
            kind,
            app: "qio".to_string(),
            ok,
            cache: if exec_us == 0 { "warm" } else { "miss" },
            stages: StageSample {
                parse_us: 2,
                queue_us: 5,
                exec_us,
                serialize_us: 1,
                flush_us: 1,
            },
        }
    }

    #[test]
    fn snapshot_aggregates_across_threads_and_kinds() {
        let t = std::sync::Arc::new(Telemetry::new(64));
        std::thread::scope(|s| {
            for worker in 0..4u64 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..25u64 {
                        t.record(sample(worker * 100 + i, "simulate", 100 + i, true));
                    }
                    t.record(sample(worker, "layout", 0, false));
                });
            }
        });
        t.record_tick(12);
        t.record_queue_depth(3);
        let snap = t.snapshot();
        assert_eq!(
            snap.get("v").and_then(Json::as_u64),
            Some(TELEMETRY_VERSION)
        );
        let sim = snap.get("kinds").and_then(|k| k.get("simulate")).unwrap();
        assert_eq!(sim.get("count").and_then(Json::as_u64), Some(100));
        assert_eq!(sim.get("errors").and_then(Json::as_u64), Some(0));
        let total = sim.get("total_us").unwrap();
        assert_eq!(total.get("count").and_then(Json::as_u64), Some(100));
        assert!(total.get("p50").and_then(Json::as_u64).unwrap() > 0);
        let exec = sim.get("stages").and_then(|s| s.get("exec_us")).unwrap();
        assert_eq!(exec.get("count").and_then(Json::as_u64), Some(100));
        let lay = snap.get("kinds").and_then(|k| k.get("layout")).unwrap();
        assert_eq!(lay.get("errors").and_then(Json::as_u64), Some(4));
        assert_eq!(
            lay.get("cache")
                .and_then(|c| c.get("warm"))
                .and_then(Json::as_u64),
            Some(4)
        );
        let slowest = snap.get("slowest").and_then(Json::as_arr).unwrap();
        assert_eq!(slowest.len(), SLOWEST_N);
        // Sorted slowest-first.
        let totals: Vec<u64> = slowest
            .iter()
            .map(|s| s.get("total_us").and_then(Json::as_u64).unwrap())
            .collect();
        assert!(totals.windows(2).all(|w| w[0] >= w[1]));
        let ev = snap.get("event_loop").unwrap();
        assert_eq!(
            ev.get("tick_us")
                .and_then(|t| t.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn ring_is_bounded() {
        let t = Telemetry::new(4);
        for i in 0..100 {
            t.record(sample(i, "ping", 0, true));
        }
        assert_eq!(t.ring.lock().unwrap().len(), 4);
        let t0 = Telemetry::new(0);
        t0.record(sample(1, "ping", 0, true));
        assert!(
            t0.ring.lock().unwrap().is_empty(),
            "cap 0 disables the ring"
        );
    }

    #[test]
    fn merged_snapshots_equal_one_big_accumulator() {
        let a = Telemetry::new(16);
        let b = Telemetry::new(16);
        let both = Telemetry::new(16);
        for i in 0..20u64 {
            let s = sample(i, "simulate", 50 + i * 3, i % 5 != 0);
            if i % 2 == 0 {
                a.record(s.clone());
            } else {
                b.record(s.clone());
            }
            both.record(s);
        }
        let merged = merge_snapshots(&[
            ("n0".to_string(), a.snapshot()),
            ("n1".to_string(), b.snapshot()),
        ]);
        let one = both.snapshot();
        let get = |j: &Json, path: [&str; 3]| {
            j.get(path[0])
                .and_then(|x| x.get(path[1]))
                .and_then(|x| x.get(path[2]))
                .map(|x| x.to_string())
        };
        for field in ["count", "errors"] {
            assert_eq!(
                get(&merged, ["kinds", "simulate", field]),
                get(&one, ["kinds", "simulate", field])
            );
        }
        // Bucket-wise merge: the merged total histogram is exactly the
        // union accumulator's.
        let mh = merged
            .get("kinds")
            .and_then(|k| k.get("simulate"))
            .and_then(|s| s.get("total_us"))
            .and_then(Hist::from_json)
            .unwrap();
        let oh = one
            .get("kinds")
            .and_then(|k| k.get("simulate"))
            .and_then(|s| s.get("total_us"))
            .and_then(Hist::from_json)
            .unwrap();
        assert_eq!(mh, oh);
        // Merged slowest entries carry their node tags.
        let slowest = merged.get("slowest").and_then(Json::as_arr).unwrap();
        assert!(!slowest.is_empty() && slowest.len() <= SLOWEST_N);
        for s in slowest {
            assert!(matches!(
                s.get("node").and_then(Json::as_str),
                Some("n0") | Some("n1")
            ));
        }
        // Version skew: an unknown snapshot version contributes nothing.
        let skewed = merge_snapshots(&[(
            "nx".to_string(),
            Json::obj().set("v", 99u64).set("kinds", Json::obj()),
        )]);
        assert!(matches!(skewed.get("kinds"), Some(Json::Obj(k)) if k.is_empty()));
    }

    #[test]
    fn prometheus_rendering_has_the_metric_families() {
        let t = Telemetry::new(8);
        for i in 0..10 {
            t.record(sample(i, "sweep", 200, true));
        }
        t.record_tick(40);
        t.record_queue_depth(2);
        let text = render_prometheus(&t.snapshot());
        assert!(text.contains("flo_requests_total{kind=\"sweep\"} 10"));
        assert!(text.contains("flo_request_errors_total{kind=\"sweep\"} 0"));
        assert!(text.contains("flo_cache_outcomes_total{kind=\"sweep\",outcome=\"miss\"} 10"));
        assert!(text.contains("flo_request_duration_us{kind=\"sweep\",quantile=\"0.5\"}"));
        assert!(
            text.contains("flo_stage_duration_us{kind=\"sweep\",stage=\"exec\",quantile=\"0.99\"}")
        );
        assert!(text.contains("flo_request_duration_us_count{kind=\"sweep\"} 10"));
        assert!(text.contains("flo_event_loop_tick_us{quantile=\"0.5\"} 40"));
        assert!(text.contains("flo_queue_depth_count{} 1"));
    }
}
