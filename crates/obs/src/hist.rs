//! Power-of-two bucketed histograms for distance/latency distributions.

use flo_json::Json;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `0` counts the value `0`; bucket `i ≥ 1` counts values in
/// `[2^(i−1), 2^i)`. 65 buckets cover the full `u64` range, so
/// [`Hist::record`] is branch-light and never saturates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Hist {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// The bucket index `value` falls into.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The half-open range `[lo, hi)` of values bucket `i` counts
    /// (`hi = u64::MAX` stands in for 2^64 in the last bucket).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        // Saturating: a telemetry accumulator must never panic on an
        // extreme sample, and saturating addition stays associative, so
        // cluster merges remain order-independent even at the rail.
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Bucket counts, lowest bucket first (trailing empty buckets
    /// trimmed by construction).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Sum of the recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) of the recorded samples.
    ///
    /// The rank-`⌈q·count⌉` sample's bucket is found by a cumulative
    /// walk, then the estimate interpolates linearly within the bucket's
    /// value range (capped at the observed max, so a lone sample in a
    /// wide bucket never reports a value larger than anything recorded).
    /// The log2 bucketing bounds the relative error at 2× — the right
    /// trade for latency tails, where the *order of magnitude* is the
    /// signal and the accumulator must stay a few dozen counters.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = Self::bucket_range(i);
                let hi = hi.min(self.max.saturating_add(1)).max(lo + 1);
                let within = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + within * (hi - 1 - lo) as f64;
                return (est as u64).min(self.max);
            }
            seen += c;
        }
        self.max
    }

    /// JSON rendering: bucket counts plus summary moments and the
    /// standard latency quantiles. `count`/`sum`/`max`/`buckets` are the
    /// lossless fields [`Hist::from_json`] reads back; the quantiles are
    /// derived conveniences for reporters.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("count", self.count)
            .set("sum", self.sum)
            .set("mean", self.mean())
            .set("max", self.max)
            .set("p50", self.quantile(0.5))
            .set("p95", self.quantile(0.95))
            .set("p99", self.quantile(0.99))
            .set("buckets", self.buckets.clone())
    }

    /// Rebuild a histogram from its [`Hist::to_json`] rendering — the
    /// cluster fan-out path deserializes per-node histograms with this
    /// and [`Hist::merge`]s them into cluster-wide distributions.
    /// `None` when the JSON lacks the lossless fields or a bucket is not
    /// a non-negative integer.
    pub fn from_json(j: &Json) -> Option<Hist> {
        let count = j.get("count").and_then(Json::as_u64)?;
        let sum = j.get("sum").and_then(Json::as_u64)?;
        let max = j.get("max").and_then(Json::as_u64)?;
        let raw = j.get("buckets").and_then(Json::as_arr)?;
        if raw.len() > 65 {
            return None;
        }
        let mut buckets = Vec::with_capacity(raw.len());
        for b in raw {
            buckets.push(b.as_u64()?);
        }
        let total = buckets
            .iter()
            .try_fold(0u64, |acc, &b| acc.checked_add(b))?;
        if total != count {
            return None;
        }
        Some(Hist {
            buckets,
            count,
            sum,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(7), 3);
        assert_eq!(Hist::bucket_of(8), 4);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn every_value_lands_in_its_declared_range() {
        for v in (0..200).chain([1 << 20, u64::MAX - 1, u64::MAX]) {
            let b = Hist::bucket_of(v);
            let (lo, hi) = Hist::bucket_range(b);
            assert!(v >= lo, "{v} below bucket {b} range");
            assert!(v < hi || b == 64, "{v} above bucket {b}");
        }
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Hist::new();
        for v in [0, 1, 1, 3, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 8);
        assert!((h.mean() - 13.0 / 5.0).abs() < 1e-12);
        // buckets: [0]=1 (value 0), [1]=2 (two 1s), [2]=1 (3), [4]=1 (8)
        assert_eq!(h.buckets(), &[1, 2, 1, 0, 1]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Hist::new();
        a.record(1);
        let mut b = Hist::new();
        b.record(100);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100);
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[1], 1);
        assert_eq!(a.buckets()[Hist::bucket_of(100)], 1);
    }

    #[test]
    fn json_is_parseable() {
        let mut h = Hist::new();
        h.record(5);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_f64), Some(1.0));
        assert!(flo_json::parse(&j.pretty()).is_ok());
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = Hist::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram quantile is 0");
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Log2 buckets bound the relative error at 2× on each side.
        let p50 = h.quantile(0.5);
        assert!((250..=1000).contains(&p50), "p50 {p50} out of band");
        let p99 = h.quantile(0.99);
        assert!((495..=1000).contains(&p99), "p99 {p99} out of band");
        assert!(p50 <= p99, "quantiles are monotone");
        assert_eq!(h.quantile(1.0), 1000, "p100 is the max exactly");
        // A single sample reports itself at every quantile (the cap at
        // the observed max, not the bucket's upper edge).
        let mut one = Hist::new();
        one.record(777);
        assert_eq!(one.quantile(0.5), 777);
        assert_eq!(one.quantile(0.99), 777);
    }

    #[test]
    fn json_round_trips_losslessly() {
        let mut h = Hist::new();
        // Samples stay below 2^53: flo_json carries numbers as f64, so
        // only such integers survive the wire (telemetry records
        // microseconds — 2^53 µs is ~285 years).
        for v in [0, 1, 3, 900, 70_000, 1u64 << 52] {
            h.record(v);
        }
        let back = Hist::from_json(&h.to_json()).expect("round trip");
        assert_eq!(back, h);
        assert_eq!(back.quantile(0.95), h.quantile(0.95));
        // Missing lossless fields or corrupt counts are rejected.
        assert!(Hist::from_json(&Json::obj().set("count", 1u64)).is_none());
        let lying = Json::obj()
            .set("count", 999u64)
            .set("sum", h.sum())
            .set("max", h.max())
            .set("buckets", h.buckets().to_vec());
        assert!(
            Hist::from_json(&lying).is_none(),
            "bucket sum must match count"
        );
    }

    /// The cluster fan-out folds per-node histograms pairwise in
    /// membership order; the fold is only well-defined if merge is
    /// associative (and commutative) — pin it across disjoint and
    /// overlapping bucket shapes.
    #[test]
    fn merge_is_associative_across_nodes() {
        let node = |samples: &[u64]| {
            let mut h = Hist::new();
            for &s in samples {
                h.record(s);
            }
            h
        };
        let a = node(&[1, 2, 3, 500]);
        let b = node(&[0, 0, 9_000_000]);
        let c = node(&[42, 1 << 40, 7]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        assert_eq!(ab_c, a_bc, "(a·b)·c == a·(b·c)");

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "merge commutes");

        // Merging through the JSON wire form changes nothing.
        let mut via_json = Hist::from_json(&a.to_json()).unwrap();
        via_json.merge(&Hist::from_json(&b.to_json()).unwrap());
        via_json.merge(&Hist::from_json(&c.to_json()).unwrap());
        assert_eq!(via_json, ab_c);

        // Identity element.
        let mut with_empty = a.clone();
        with_empty.merge(&Hist::new());
        assert_eq!(with_empty, a);
    }
}
