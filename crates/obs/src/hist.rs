//! Power-of-two bucketed histograms for distance/latency distributions.

use flo_json::Json;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `0` counts the value `0`; bucket `i ≥ 1` counts values in
/// `[2^(i−1), 2^i)`. 65 buckets cover the full `u64` range, so
/// [`Hist::record`] is branch-light and never saturates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Hist {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// The bucket index `value` falls into.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The half-open range `[lo, hi)` of values bucket `i` counts
    /// (`hi = u64::MAX` stands in for 2^64 in the last bucket).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Bucket counts, lowest bucket first (trailing empty buckets
    /// trimmed by construction).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// JSON rendering: bucket counts plus summary moments.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("count", self.count)
            .set("mean", self.mean())
            .set("max", self.max)
            .set("buckets", self.buckets.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(7), 3);
        assert_eq!(Hist::bucket_of(8), 4);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn every_value_lands_in_its_declared_range() {
        for v in (0..200).chain([1 << 20, u64::MAX - 1, u64::MAX]) {
            let b = Hist::bucket_of(v);
            let (lo, hi) = Hist::bucket_range(b);
            assert!(v >= lo, "{v} below bucket {b} range");
            assert!(v < hi || b == 64, "{v} above bucket {b}");
        }
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Hist::new();
        for v in [0, 1, 1, 3, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 8);
        assert!((h.mean() - 13.0 / 5.0).abs() < 1e-12);
        // buckets: [0]=1 (value 0), [1]=2 (two 1s), [2]=1 (3), [4]=1 (8)
        assert_eq!(h.buckets(), &[1, 2, 1, 0, 1]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Hist::new();
        a.record(1);
        let mut b = Hist::new();
        b.record(100);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100);
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[1], 1);
        assert_eq!(a.buckets()[Hist::bucket_of(100)], 1);
    }

    #[test]
    fn json_is_parseable() {
        let mut h = Hist::new();
        h.record(5);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_f64), Some(1.0));
        assert!(flo_json::parse(&j.pretty()).is_ok());
    }
}
