//! Thread-aware hierarchical phase spans.
//!
//! A [`Span`] is an RAII guard: [`span("tracegen")`](span) records the
//! monotonic start time, and dropping the guard records the end. Records
//! land on the process-global [`Timeline`] with the recording thread and
//! the enclosing span on that thread (if any), so the harness can render
//! a per-phase, per-thread timeline after the run.
//!
//! Recording is disabled unless `FLO_METRICS=jsonl` is set (or a caller
//! flips [`Timeline::set_enabled`]), in which case opening a span costs
//! one relaxed atomic load — cheap enough to leave span sites in
//! always-compiled code.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use flo_json::Json;

use crate::sink::{metrics_mode, MetricsMode};

/// One completed (or still open) phase interval.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Phase name, e.g. `"layout-pass"` or `"sweep-point"`.
    pub name: String,
    /// Dense id of the recording thread (assigned in first-span order).
    pub thread: u64,
    /// Index (within the same drain batch) of the span that was open on
    /// this thread when this one started.
    pub parent: Option<usize>,
    /// Start, in milliseconds since the timeline epoch (monotonic clock).
    pub start_ms: f64,
    /// End, in the same clock; equals `start_ms` until the span closes.
    pub end_ms: f64,
}

impl SpanRecord {
    /// Duration in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }

    /// JSONL event payload for this span.
    pub fn to_json(&self) -> Json {
        let parent = match self.parent {
            Some(p) => Json::from(p),
            None => Json::Null,
        };
        Json::obj()
            .set("name", self.name.as_str())
            .set("thread", self.thread)
            .set("parent", parent)
            .set("start_ms", self.start_ms)
            .set("end_ms", self.end_ms)
    }
}

/// The process-global span collector.
pub struct Timeline {
    enabled: AtomicBool,
    epoch: Instant,
    records: Mutex<Vec<SpanRecord>>,
}

static TIMELINE: OnceLock<Timeline> = OnceLock::new();
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: Cell<Option<u64>> = const { Cell::new(None) };
    static OPEN: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|c| match c.get() {
        Some(id) => id,
        None => {
            let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(Some(id));
            id
        }
    })
}

/// The global timeline (created on first use; recording starts enabled
/// iff `FLO_METRICS=jsonl`).
pub fn timeline() -> &'static Timeline {
    TIMELINE.get_or_init(|| Timeline {
        enabled: AtomicBool::new(metrics_mode() == MetricsMode::Jsonl),
        epoch: Instant::now(),
        records: Mutex::new(Vec::new()),
    })
}

/// Open a span named `name` on the global timeline. Returns a guard that
/// closes the span when dropped. No-op (one atomic load) when recording
/// is disabled.
pub fn span(name: &str) -> Span {
    timeline().start(name)
}

impl Timeline {
    /// Turn recording on or off (tests and the perf harness use this to
    /// override the `FLO_METRICS` default).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a span. Prefer the free function [`span`].
    pub fn start(&'static self, name: &str) -> Span {
        if !self.is_enabled() {
            return Span {
                timeline: self,
                idx: None,
            };
        }
        let thread = thread_id();
        let parent = OPEN.with(|s| s.borrow().last().copied());
        let start_ms = self.epoch.elapsed().as_secs_f64() * 1e3;
        let idx = {
            let mut records = self.records.lock().unwrap();
            records.push(SpanRecord {
                name: name.to_string(),
                thread,
                parent,
                start_ms,
                end_ms: start_ms,
            });
            records.len() - 1
        };
        OPEN.with(|s| s.borrow_mut().push(idx));
        Span {
            timeline: self,
            idx: Some(idx),
        }
    }

    /// Take every record collected so far, emptying the timeline.
    ///
    /// `parent` indices refer to positions within the returned batch, so
    /// drain between top-level phases, not while spans are open.
    pub fn drain(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.records.lock().unwrap())
    }

    fn close(&self, idx: usize) {
        OPEN.with(|s| {
            let mut open = s.borrow_mut();
            if open.last() == Some(&idx) {
                open.pop();
            } else {
                // Out-of-order drop (guard moved across scopes): remove
                // wherever it sits so later parents stay correct.
                open.retain(|&i| i != idx);
            }
        });
        let end_ms = self.epoch.elapsed().as_secs_f64() * 1e3;
        let mut records = self.records.lock().unwrap();
        if let Some(r) = records.get_mut(idx) {
            r.end_ms = end_ms;
        }
    }
}

/// RAII guard for an open phase span; closes it on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct Span {
    timeline: &'static Timeline,
    idx: Option<usize>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(idx) = self.idx.take() {
            self.timeline.close(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises disabled + nested recording sequentially; the
    // timeline is process-global, so splitting this across #[test]
    // functions would race under the parallel test runner.
    #[test]
    fn disabled_then_nested_recording() {
        let tl = timeline();
        tl.set_enabled(false);
        {
            let _quiet = span("quiet");
        }
        assert!(tl.drain().is_empty(), "disabled spans must not record");

        tl.set_enabled(true);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            let _sibling = span("sibling");
        }
        tl.set_enabled(false);
        let records = tl.drain();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "outer");
        assert_eq!(records[0].parent, None);
        assert_eq!(records[1].name, "inner");
        assert_eq!(records[1].parent, Some(0), "inner nests under outer");
        assert_eq!(records[2].parent, Some(0), "sibling also under outer");
        for r in &records {
            assert!(r.end_ms >= r.start_ms, "monotonic span: {r:?}");
            assert_eq!(r.thread, records[0].thread);
            assert!(flo_json::parse(&r.to_json().to_string()).is_ok());
        }
        // inner closed before outer
        assert!(records[1].end_ms <= records[0].end_ms + 1e-9);
    }
}
