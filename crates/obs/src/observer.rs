//! The observer trait the simulator's hot paths are instrumented with.
//!
//! Instrumentation sites call these methods through a generic type
//! parameter, so each instantiation is monomorphized: with
//! [`NullObserver`] every call inlines to nothing and the optimizer sees
//! the exact pre-instrumentation code; with
//! [`crate::MetricsObserver`] the same sites accumulate counters. The
//! simulator never behaves differently based on the observer — observers
//! receive events, they do not steer.

/// The two cache layers of the simulated hierarchy (Fig. 1 of the
/// paper: caches are allocated at the I/O and storage layers only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layer {
    /// I/O-node caches (upper layer).
    Io,
    /// Storage-node caches (lower layer).
    Storage,
}

impl Layer {
    /// Lower-case display name, used in event encodings.
    pub fn name(&self) -> &'static str {
        match self {
            Layer::Io => "io",
            Layer::Storage => "storage",
        }
    }
}

/// Where KARMA's hint-driven partitioning routed a request (mirrors
/// `flo_sim::policies::karma::KarmaLevel` without the dependency cycle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KarmaRoute {
    /// Range partitioned into the I/O (upper) layer.
    Upper,
    /// Range partitioned into the storage (lower) layer.
    Lower,
    /// Cold range cached nowhere.
    Bypass,
}

/// One injected-fault event, reported by the simulator's fault hook (see
/// `flo_sim::fault`). Events describe what the *simulated* system
/// experienced — an outage window, a rerouted request, a degraded read, a
/// transient error absorbed by a retry, a cache flush — never a host-side
/// failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Storage node `node` entered an outage window.
    Outage {
        /// The node that went dark.
        node: usize,
    },
    /// A request to a dark node was re-striped onto a live one.
    Failover {
        /// The block's home storage node.
        from: usize,
        /// The live node that served it instead.
        to: usize,
    },
    /// A disk read was served by a degraded (straggler) disk.
    StragglerRead {
        /// The degraded storage node.
        node: usize,
        /// Extra latency charged beyond the healthy read, in ms.
        extra_ms: f64,
    },
    /// A transient I/O error was absorbed by the retry model.
    Retry {
        /// The storage node whose read failed.
        node: usize,
        /// Zero-based retry attempt.
        attempt: u32,
        /// Backoff/timeout latency charged for this attempt, in ms.
        wait_ms: f64,
    },
    /// A fault-injected cache flush dropped `blocks` resident blocks.
    CacheFlush {
        /// Which layer's cache flushed.
        layer: Layer,
        /// Node index within the layer.
        node: usize,
        /// Resident blocks lost.
        blocks: usize,
    },
}

/// Callbacks the simulator invokes on the way through an access.
///
/// Every method defaults to an empty `#[inline]` body; implementors
/// override only what they collect. `ENABLED` lets instrumentation sites
/// skip *setup* work (e.g. occupancy snapshots) that would run even when
/// every callback is a no-op — per-event calls need no gate, the
/// monomorphizer deletes them.
pub trait Observer {
    /// Whether this observer collects anything. Sites may skip
    /// batch/snapshot work when `false`; they must not change simulated
    /// behavior based on it.
    const ENABLED: bool = true;

    /// A cache lookup at `layer`, node `node`, serving `weight` coalesced
    /// element accesses; `hit` is the block-level outcome.
    #[inline]
    fn cache_access(&mut self, layer: Layer, node: usize, hit: bool, weight: u32) {
        let _ = (layer, node, hit, weight);
    }

    /// A cache at `layer`/`node` evicted a block to admit another.
    #[inline]
    fn eviction(&mut self, layer: Layer, node: usize) {
        let _ = (layer, node);
    }

    /// DEMOTE-LRU demoted a block out of I/O node `node`'s cache.
    #[inline]
    fn demotion(&mut self, node: usize) {
        let _ = node;
    }

    /// Disk at storage node `node` served a read (`sequential` per the
    /// elevator-window model) costing `latency_ms`.
    #[inline]
    fn disk_read(&mut self, node: usize, sequential: bool, latency_ms: f64) {
        let _ = (node, sequential, latency_ms);
    }

    /// KARMA routed a request according to its hinted range.
    #[inline]
    fn karma_route(&mut self, route: KarmaRoute) {
        let _ = route;
    }

    /// The sweep engine classified an access at stack distance `dist`
    /// (distinct same-set blocks since the previous access of the same
    /// block), or `None` for a cold access. The distance saturates at the
    /// swept geometries' maximum ways — the engine stops counting once
    /// every verdict is decided — so histograms built from it are exact
    /// below the saturation point and a lower bound above it.
    #[inline]
    fn stack_distance(&mut self, dist: Option<u64>) {
        let _ = dist;
    }

    /// End-of-run per-set occupancy of the cache at `layer`/`node`
    /// (`per_set[s]` = resident blocks in set `s`).
    #[inline]
    fn occupancy(&mut self, layer: Layer, node: usize, per_set: &[u32]) {
        let _ = (layer, node, per_set);
    }

    /// The fault hook injected (or absorbed) a fault. Only emitted when a
    /// fault plan is active; the no-plan path compiles the call sites out
    /// entirely.
    #[inline]
    fn fault(&mut self, event: FaultEvent) {
        let _ = event;
    }
}

/// The disabled observer: overrides nothing, so every instrumented call
/// site compiles to the uninstrumented code.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_disabled() {
        const { assert!(!NullObserver::ENABLED) };
        // Defaults accept every event without effect.
        let mut o = NullObserver;
        o.cache_access(Layer::Io, 0, true, 3);
        o.eviction(Layer::Storage, 1);
        o.demotion(0);
        o.disk_read(0, false, 9.0);
        o.karma_route(KarmaRoute::Bypass);
        o.stack_distance(None);
        o.occupancy(Layer::Io, 0, &[1, 2]);
        o.fault(FaultEvent::Outage { node: 0 });
        o.fault(FaultEvent::Retry {
            node: 1,
            attempt: 0,
            wait_ms: 2.0,
        });
    }

    #[test]
    fn layer_names() {
        assert_eq!(Layer::Io.name(), "io");
        assert_eq!(Layer::Storage.name(), "storage");
    }
}
