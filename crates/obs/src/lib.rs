//! # flo-obs
//!
//! Observability for the simulator and the experiment harness: the
//! paper's whole argument rests on *where* I/O time goes (per-layer hit
//! ratios, disk activity, layout-induced locality — SC 2012 §5), so the
//! reproduction must be able to explain a regression, not just detect it
//! by bit-equality. This crate provides the three pieces that make the
//! internals visible without costing the hot paths anything:
//!
//! * **[`Observer`]** — a callback trait threaded through the simulator's
//!   per-access walks as a *monomorphized* type parameter. Every method
//!   has an empty `#[inline]` default, and the [`NullObserver`]
//!   instantiation overrides nothing, so the instrumented code compiles
//!   to exactly the uninstrumented machine code (asserted differentially
//!   against the frozen `flo_sim::seedpath` reference and gated at ≤2%
//!   overhead by `perfstats --obs-gate`). [`MetricsObserver`] is the
//!   collecting instantiation: per-layer per-node counters, disk
//!   seek/sequential breakdowns, KARMA routing utilization,
//!   stack-distance histograms and per-set occupancy snapshots.
//!
//! * **[`span()`]** — a thread-aware hierarchical phase timer. Phases
//!   (`layout-pass`, `tracegen`, `simulate`, `sweep`, per-capacity-point
//!   simulation) record monotonic wall-clock spans onto a global
//!   [`Timeline`]; recording is off unless metrics are enabled, so idle
//!   spans cost one relaxed atomic load.
//!
//! * **[`sink`]** — a structured JSONL event sink with a schema version,
//!   plus the `FLO_METRICS=jsonl|off` toggle. The harness writes one
//!   artifact per experiment under `results/metrics/`, and `flostat`
//!   (in `flo-bench`) loads them back for per-layer breakdowns, phase
//!   summaries and A/B diffs.
//!
//! [`timing`] carries the wall-clock micro-benchmark helpers that used to
//! live in `flo_bench::timing` (the shim there is gone; this is the one
//! home).

pub mod hist;
pub mod metrics;
pub mod observer;
pub mod sink;
pub mod span;
pub mod telemetry;
pub mod timing;

pub use hist::Hist;
pub use metrics::{FaultCounters, MetricsObserver, StoreCounters};
pub use observer::{FaultEvent, KarmaRoute, Layer, NullObserver, Observer};
pub use sink::{metrics_mode, JsonlSink, MetricsMode, SCHEMA_VERSION};
pub use span::{span, timeline, Span, SpanRecord, Timeline};
pub use telemetry::{
    merge_snapshots, render_prometheus, RequestSummary, StageSample, Telemetry, TELEMETRY_VERSION,
};
