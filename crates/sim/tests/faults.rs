//! Replay guarantees of the fault-injection subsystem: a fault schedule
//! is a pure function of its seed, so degraded-mode runs are exactly
//! reproducible — and actually degraded.

use flo_linalg::SplitMix64;
use flo_obs::FaultCounters;
use flo_sim::{
    simulate, simulate_faulted, BlockAddr, FaultPlan, FaultState, PolicyKind, RunConfig, SimReport,
    StorageSystem, ThreadTrace, Topology,
};

fn traces_for(topo: &Topology) -> Vec<ThreadTrace> {
    let mut rng = SplitMix64::new(0x7E57_FA17);
    (0..topo.compute_nodes)
        .map(|t| {
            let mut tr = ThreadTrace::new(t, t);
            for _ in 0..400 {
                tr.push(BlockAddr::new((rng.below(3)) as u32, rng.below(200)));
            }
            tr
        })
        .collect()
}

fn faulted_run(topo: &Topology, policy: PolicyKind, plan: FaultPlan) -> (SimReport, FaultCounters) {
    let traces = traces_for(topo);
    let mut sys = StorageSystem::new(topo.clone(), policy).unwrap();
    let mut faults = FaultState::new(plan).unwrap();
    let rep = simulate_faulted(&mut sys, &traces, &RunConfig::default(), &mut faults);
    (rep, *faults.stats())
}

fn assert_bit_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(a.disk_reads, b.disk_reads);
    assert_eq!(a.layers.io.hits, b.layers.io.hits);
    assert_eq!(a.layers.storage.hits, b.layers.storage.hits);
    assert_eq!(a.total_requests, b.total_requests);
    assert_eq!(a.execution_time_ms.to_bits(), b.execution_time_ms.to_bits());
    for (x, y) in a.thread_latency_ms.iter().zip(&b.thread_latency_ms) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// The same fault seed replays byte for byte — report and injected-fault
/// tallies — while a different seed produces a different schedule.
#[test]
fn same_seed_replays_different_seed_diverges() {
    let topo = Topology::paper_default();
    for policy in PolicyKind::all() {
        let plan = FaultPlan::default_degraded(0xF4017);
        let (rep_a, stats_a) = faulted_run(&topo, policy, plan);
        let (rep_b, stats_b) = faulted_run(&topo, policy, plan);
        assert_bit_identical(&rep_a, &rep_b);
        assert_eq!(stats_a, stats_b, "{policy:?}: fault tallies must replay");

        let (rep_c, stats_c) = faulted_run(&topo, policy, FaultPlan::default_degraded(0xBAD));
        assert!(
            stats_a != stats_c
                || rep_a.execution_time_ms.to_bits() != rep_c.execution_time_ms.to_bits(),
            "{policy:?}: a different seed must produce a different schedule"
        );
    }
}

/// A degraded plan actually injects: the run costs more than the healthy
/// baseline, every fault class fires at full intensity, and the charged
/// cost shows up in the report (counters stay trace-consistent).
#[test]
fn degraded_runs_cost_more_and_exercise_every_fault_class() {
    let topo = Topology::paper_default();
    let traces = traces_for(&topo);
    let healthy = {
        let mut sys = StorageSystem::new(topo.clone(), PolicyKind::LruInclusive).unwrap();
        simulate(&mut sys, &traces, &RunConfig::default())
    };
    let plan = FaultPlan::with_intensity(0xF4017, 2.0);
    let (rep, stats) = faulted_run(&topo, PolicyKind::LruInclusive, plan);
    assert!(
        rep.execution_time_ms > healthy.execution_time_ms,
        "faults must cost simulated time: {} vs {}",
        rep.execution_time_ms,
        healthy.execution_time_ms
    );
    assert!(stats.outages > 0, "no outage fired: {stats:?}");
    assert!(stats.failovers > 0, "no failover fired: {stats:?}");
    assert!(stats.straggler_reads > 0, "no straggler fired: {stats:?}");
    assert!(stats.retries > 0, "no transient retry fired: {stats:?}");
    assert!(stats.cache_flushes > 0, "no cache flush fired: {stats:?}");
    assert!(stats.straggler_ms > 0.0 && stats.retry_ms > 0.0);
    // Fault accounting stays within the trace: at most one disk read per
    // request, so stragglers cannot outnumber disk reads.
    assert!(stats.straggler_reads <= rep.disk_reads);
    assert_eq!(rep.total_requests, healthy.total_requests);
}

/// Fault validation failures surface as typed errors, not panics.
#[test]
fn invalid_plan_is_a_typed_error() {
    let mut plan = FaultPlan::default_degraded(1);
    plan.window = 0;
    let err = FaultState::new(plan).unwrap_err();
    assert!(err.to_string().contains("window"), "{err}");
}
