//! Property-based tests of the storage-cache simulator's invariants.

use flo_sim::policies::demote;
use flo_sim::{BlockAddr, LruCore, PolicyKind, StorageSystem, ThreadTrace, Topology};
use proptest::prelude::*;

fn block_stream() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..40, 1..200)
}

proptest! {
    /// LRU inclusion (stack) property: a larger cache's hits are a
    /// superset of a smaller one's on any trace.
    #[test]
    fn lru_stack_property(stream in block_stream()) {
        let mut small = LruCore::new(4);
        let mut large = LruCore::new(16);
        for &i in &stream {
            let b = BlockAddr::new(0, i);
            let hs = small.access(b);
            let hl = large.access(b);
            prop_assert!(!hs || hl, "small hit where large missed at block {i}");
            small.insert(b);
            large.insert(b);
        }
        prop_assert!(large.stats().hits >= small.stats().hits);
    }

    /// The LRU cache never exceeds its capacity and never double-counts.
    #[test]
    fn lru_capacity_invariant(stream in block_stream(), cap in 1usize..12) {
        let mut c = LruCore::new(cap);
        for &i in &stream {
            let b = BlockAddr::new(0, i);
            c.access(b);
            c.insert(b);
            prop_assert!(c.len() <= cap);
            let listed = c.blocks_mru_to_lru();
            let mut dedup = listed.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), listed.len(), "duplicate resident block");
        }
    }

    /// DEMOTE keeps the two layers exclusive on any trace.
    #[test]
    fn demote_exclusivity(stream in block_stream()) {
        let mut upper = LruCore::new(3);
        let mut lower = LruCore::new(5);
        for &i in &stream {
            demote::access(&mut upper, &mut lower, BlockAddr::new(0, i));
            for b in upper.blocks_mru_to_lru() {
                prop_assert!(!lower.contains(b), "block {b:?} resident at both layers");
            }
        }
    }

    /// Any policy on any trace keeps hit counts within access counts, and
    /// the simulation is deterministic.
    #[test]
    fn policies_consistent_and_deterministic(
        streams in proptest::collection::vec(block_stream(), 1..4),
        policy_idx in 0usize..3,
    ) {
        let policy = PolicyKind::all()[policy_idx];
        let topo = Topology::tiny();
        let traces: Vec<ThreadTrace> = streams
            .iter()
            .enumerate()
            .map(|(t, s)| {
                let mut tr = ThreadTrace::new(t, t % topo.compute_nodes);
                for &i in s {
                    tr.push(BlockAddr::new((i % 3) as u32, i));
                }
                tr
            })
            .collect();
        let run = || {
            let mut system = StorageSystem::new(topo.clone(), policy);
            flo_sim::simulate(&mut system, &traces, &Default::default())
        };
        let a = run();
        let b = run();
        prop_assert!(a.layers.io.hits <= a.layers.io.accesses);
        prop_assert!(a.layers.storage.hits <= a.layers.storage.accesses);
        prop_assert!(a.disk_sequential_reads <= a.disk_reads);
        prop_assert_eq!(a.execution_time_ms, b.execution_time_ms);
        prop_assert_eq!(a.disk_reads, b.disk_reads);
        // Every block request reaches the I/O layer exactly once (weighted
        // by coalesced element counts).
        let elements: u64 = traces.iter().map(|t| t.element_accesses()).sum();
        prop_assert_eq!(a.layers.io.accesses, elements);
    }

    /// Striping never routes a block outside the storage nodes and is
    /// deterministic per address.
    #[test]
    fn striping_is_total(file in 0u32..4, index in 0u64..10_000) {
        let topo = Topology::paper_default();
        let node = topo.storage_node_of_block(BlockAddr::new(file, index));
        prop_assert!(node < topo.storage_nodes);
        prop_assert_eq!(node, topo.storage_node_of_block(BlockAddr::new(file, index)));
    }
}
