//! Property-based tests of the storage-cache simulator's invariants.
//!
//! Deterministic SplitMix64 case generation replaces `proptest`
//! (unavailable offline); failures carry a case index for replay.

use flo_linalg::SplitMix64;
use flo_sim::policies::demote;
use flo_sim::stackdist::StackEngine;
use flo_sim::{
    simulate, simulate_faulted, simulate_sweep, BlockAddr, FaultPlan, FaultState, LruCore,
    MultiCapacityStack, PolicyKind, RunConfig, SimReport, StorageSystem, SweepPoint, ThreadTrace,
    Topology,
};

fn block_stream(rng: &mut SplitMix64) -> Vec<u64> {
    let len = rng.range_usize(1, 199);
    (0..len).map(|_| rng.below(40)).collect()
}

/// LRU inclusion (stack) property: a larger cache's hits are a
/// superset of a smaller one's on any trace.
#[test]
fn lru_stack_property() {
    let mut rng = SplitMix64::new(0x57AC);
    for case in 0..100 {
        let stream = block_stream(&mut rng);
        let mut small = LruCore::new(4);
        let mut large = LruCore::new(16);
        for &i in &stream {
            let b = BlockAddr::new(0, i);
            let hs = small.access(b);
            let hl = large.access(b);
            assert!(
                !hs || hl,
                "case {case}: small hit where large missed at block {i}"
            );
            small.insert(b);
            large.insert(b);
        }
        assert!(large.stats().hits >= small.stats().hits, "case {case}");
    }
}

/// The LRU cache never exceeds its capacity and never double-counts.
#[test]
fn lru_capacity_invariant() {
    let mut rng = SplitMix64::new(0xCA9);
    for case in 0..100 {
        let stream = block_stream(&mut rng);
        let cap = rng.range_usize(1, 11);
        let mut c = LruCore::new(cap);
        for &i in &stream {
            let b = BlockAddr::new(0, i);
            c.access(b);
            c.insert(b);
            assert!(c.len() <= cap, "case {case}");
            let listed = c.blocks_mru_to_lru();
            let mut dedup = listed.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(
                dedup.len(),
                listed.len(),
                "case {case}: duplicate resident block"
            );
        }
    }
}

/// DEMOTE keeps the two layers exclusive on any trace.
#[test]
fn demote_exclusivity() {
    let mut rng = SplitMix64::new(0xDE3);
    for case in 0..100 {
        let stream = block_stream(&mut rng);
        let mut upper = LruCore::new(3);
        let mut lower = LruCore::new(5);
        for &i in &stream {
            demote::access(&mut upper, &mut lower, BlockAddr::new(0, i));
            for b in upper.blocks_mru_to_lru() {
                assert!(
                    !lower.contains(b),
                    "case {case}: block {b:?} resident at both layers"
                );
            }
        }
    }
}

/// Any policy on any trace keeps hit counts within access counts, and
/// the simulation is deterministic.
#[test]
fn policies_consistent_and_deterministic() {
    let mut rng = SplitMix64::new(0x9071C7);
    for case in 0..40 {
        let n_streams = rng.range_usize(1, 3);
        let streams: Vec<Vec<u64>> = (0..n_streams).map(|_| block_stream(&mut rng)).collect();
        let policy = PolicyKind::all()[rng.range_usize(0, 2)];
        let topo = Topology::tiny();
        let traces: Vec<ThreadTrace> = streams
            .iter()
            .enumerate()
            .map(|(t, s)| {
                let mut tr = ThreadTrace::new(t, t % topo.compute_nodes);
                for &i in s {
                    tr.push(BlockAddr::new((i % 3) as u32, i));
                }
                tr
            })
            .collect();
        let run = || {
            let mut system = StorageSystem::new(topo.clone(), policy).unwrap();
            flo_sim::simulate(&mut system, &traces, &Default::default())
        };
        let a = run();
        let b = run();
        assert!(a.layers.io.hits <= a.layers.io.accesses, "case {case}");
        assert!(
            a.layers.storage.hits <= a.layers.storage.accesses,
            "case {case}"
        );
        assert!(a.disk_sequential_reads <= a.disk_reads, "case {case}");
        assert_eq!(a.execution_time_ms, b.execution_time_ms, "case {case}");
        assert_eq!(a.disk_reads, b.disk_reads, "case {case}");
        // Every block request reaches the I/O layer exactly once (weighted
        // by coalesced element counts).
        let elements: u64 = traces.iter().map(|t| t.element_accesses()).sum();
        assert_eq!(a.layers.io.accesses, elements, "case {case}");
    }
}

fn random_traces(rng: &mut SplitMix64, topo: &Topology) -> Vec<ThreadTrace> {
    let n = rng.range_usize(1, 3);
    (0..n)
        .map(|t| {
            let mut tr = ThreadTrace::new(t, t % topo.compute_nodes);
            for i in block_stream(rng) {
                tr.push(BlockAddr::new((i % 3) as u32, i));
            }
            tr
        })
        .collect()
}

/// The one-pass sweep engine matches a direct LRU simulation of every
/// swept point — full-report equality (counters and bit-exact floats)
/// for random traces, capacities, and set counts.
#[test]
fn sweep_matches_direct_lru_simulation() {
    let mut rng = SplitMix64::new(0x5EE9_D157);
    for case in 0..25 {
        let mut topo = Topology::tiny();
        // Small ways force multi-set geometries; usize::MAX keeps the
        // fully-associative path covered.
        topo.cache_ways = [2, 3, 4, usize::MAX][rng.range_usize(0, 3)];
        let points: Vec<SweepPoint> = (0..rng.range_usize(1, 5))
            .map(|_| SweepPoint {
                io_cache_blocks: rng.range_usize(1, 48),
                storage_cache_blocks: rng.range_usize(2, 64),
            })
            .collect();
        let traces = random_traces(&mut rng, &topo);
        let cfg = RunConfig {
            compute_ms_per_thread: rng.below(8) as f64,
        };
        let swept = simulate_sweep(&topo, &points, &traces, &cfg).unwrap();
        for (i, p) in points.iter().enumerate() {
            let mut t = topo.clone();
            t.io_cache_blocks = p.io_cache_blocks;
            t.storage_cache_blocks = p.storage_cache_blocks;
            let mut sys = StorageSystem::new(t, PolicyKind::LruInclusive).unwrap();
            let direct = simulate(&mut sys, &traces, &cfg);
            let s = &swept[i];
            let tag = format!("case {case} point {i}");
            assert_eq!(s.layers.io.accesses, direct.layers.io.accesses, "{tag}");
            assert_eq!(s.layers.io.hits, direct.layers.io.hits, "{tag}");
            assert_eq!(
                s.layers.storage.accesses, direct.layers.storage.accesses,
                "{tag}"
            );
            assert_eq!(s.layers.storage.hits, direct.layers.storage.hits, "{tag}");
            assert_eq!(s.disk_reads, direct.disk_reads, "{tag}");
            assert_eq!(
                s.disk_sequential_reads, direct.disk_sequential_reads,
                "{tag}"
            );
            assert_eq!(s.demotions, direct.demotions, "{tag}");
            assert_eq!(s.total_requests, direct.total_requests, "{tag}");
            assert_eq!(
                s.compute_ms_per_thread.to_bits(),
                direct.compute_ms_per_thread.to_bits(),
                "{tag}"
            );
            assert_eq!(
                s.execution_time_ms.to_bits(),
                direct.execution_time_ms.to_bits(),
                "{tag}"
            );
            assert_eq!(s.thread_latency_ms.len(), direct.thread_latency_ms.len());
            for (t_idx, (a, b)) in s
                .thread_latency_ms
                .iter()
                .zip(&direct.thread_latency_ms)
                .enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "{tag} thread {t_idx}");
            }
        }
    }
}

/// A one-set stack geometry is exactly an always-insert LRU: the
/// engine's hit bit matches [`LruCore`] access-for-access, at both
/// timestamp widths.
#[test]
fn stack_single_set_matches_lru_core() {
    let mut rng = SplitMix64::new(0x57AC_D157);
    for case in 0..50 {
        let ways = rng.range_usize(1, 12);
        let mut stack64 = MultiCapacityStack::new(&[(1, ways)]).unwrap();
        let mut stack32 = StackEngine::<u32>::new(&[(1, ways)]).unwrap();
        let mut lru = LruCore::new(ways);
        for (pos, i) in block_stream(&mut rng).into_iter().enumerate() {
            let b = BlockAddr::new(0, i);
            let m64 = stack64.access(b);
            let m32 = stack32.access(b);
            let hit = lru.access(b);
            lru.insert(b);
            assert_eq!(m64 & 1 == 1, hit, "case {case} pos {pos}");
            assert_eq!(m64, m32, "case {case} pos {pos}: timestamp widths differ");
        }
    }
}

/// Multi-geometry masks agree with independent single-geometry engines
/// (so classifying many capacities in one walk changes nothing) and
/// across timestamp widths, for random set counts and ways including
/// non-dividing mixes that exercise the generic plan.
#[test]
fn stack_multi_geometry_is_consistent() {
    let mut rng = SplitMix64::new(0xD157_CA5E);
    for case in 0..25 {
        let geos: Vec<(usize, usize)> = (0..rng.range_usize(1, 5))
            .map(|_| (rng.range_usize(1, 9), rng.range_usize(1, 9)))
            .collect();
        let mut multi64 = MultiCapacityStack::new(&geos).unwrap();
        let mut multi32 = StackEngine::<u32>::new(&geos).unwrap();
        let mut singles: Vec<MultiCapacityStack> = geos
            .iter()
            .map(|&g| MultiCapacityStack::new(&[g]).unwrap())
            .collect();
        for (pos, i) in block_stream(&mut rng).into_iter().enumerate() {
            let b = BlockAddr::new((i % 2) as u32, i);
            let m = multi64.access(b);
            assert_eq!(m, multi32.access(b), "case {case} pos {pos}");
            for (k, s) in singles.iter_mut().enumerate() {
                assert_eq!(
                    (m >> k) & 1,
                    s.access(b) & 1,
                    "case {case} pos {pos} geo {k}"
                );
            }
        }
    }
}

/// Inclusion across the two-layer hierarchy: doubling both layers'
/// capacities (nested set geometries) never loses an I/O-layer hit, so
/// the storage layer sees a weakly shrinking miss stream.
#[test]
fn nested_capacity_growth_preserves_io_hits() {
    let mut rng = SplitMix64::new(0x1C105);
    let mut topo = Topology::tiny();
    topo.cache_ways = 2; // finite ways so the sweep exercises real sets
    let traces = random_traces(&mut rng, &topo);
    let points: Vec<SweepPoint> = (0..4)
        .map(|k| SweepPoint {
            io_cache_blocks: 4 << k,
            storage_cache_blocks: 8 << k,
        })
        .collect();
    let swept = simulate_sweep(&topo, &points, &traces, &RunConfig::default()).unwrap();
    for (i, w) in swept.windows(2).enumerate() {
        assert_eq!(w[0].layers.io.accesses, w[1].layers.io.accesses);
        assert!(
            w[1].layers.io.hits >= w[0].layers.io.hits,
            "point {i}: larger caches lost an I/O hit"
        );
        assert!(
            w[1].layers.storage.accesses <= w[0].layers.storage.accesses,
            "point {i}: storage layer saw more misses at larger capacity"
        );
    }
}

fn assert_reports_bit_identical(a: &SimReport, b: &SimReport, tag: &str) {
    assert_eq!(a.layers.io.accesses, b.layers.io.accesses, "{tag}");
    assert_eq!(a.layers.io.hits, b.layers.io.hits, "{tag}");
    assert_eq!(
        a.layers.storage.accesses, b.layers.storage.accesses,
        "{tag}"
    );
    assert_eq!(a.layers.storage.hits, b.layers.storage.hits, "{tag}");
    assert_eq!(a.disk_reads, b.disk_reads, "{tag}");
    assert_eq!(a.disk_sequential_reads, b.disk_sequential_reads, "{tag}");
    assert_eq!(a.demotions, b.demotions, "{tag}");
    assert_eq!(a.total_requests, b.total_requests, "{tag}");
    assert_eq!(
        a.compute_ms_per_thread.to_bits(),
        b.compute_ms_per_thread.to_bits(),
        "{tag}"
    );
    assert_eq!(
        a.execution_time_ms.to_bits(),
        b.execution_time_ms.to_bits(),
        "{tag}"
    );
    assert_eq!(
        a.thread_latency_ms.len(),
        b.thread_latency_ms.len(),
        "{tag}"
    );
    for (t, (x, y)) in a
        .thread_latency_ms
        .iter()
        .zip(&b.thread_latency_ms)
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{tag} thread {t}");
    }
}

/// Differential property: a quiet (zero-rate) [`FaultPlan`] run through
/// the fault-hooked simulation path is bit-identical to the no-plan path
/// for randomized traces, topologies, and every policy — the fault
/// machinery must cost nothing and change nothing when it injects
/// nothing.
#[test]
fn quiet_fault_plan_matches_no_plan_path() {
    let mut rng = SplitMix64::new(0xFA_017);
    for case in 0..40 {
        let mut topo = Topology::tiny();
        topo.storage_nodes = rng.range_usize(1, 5);
        topo.io_nodes = [1, 2, 4][rng.range_usize(0, 2)]; // divisors of the 4 compute nodes
        topo.io_cache_blocks = rng.range_usize(2, 32);
        topo.storage_cache_blocks = rng.range_usize(4, 48);
        topo.validate().unwrap();
        let traces = random_traces(&mut rng, &topo);
        let cfg = RunConfig {
            compute_ms_per_thread: rng.below(8) as f64,
        };
        let policy = PolicyKind::extended()[case % PolicyKind::extended().len()];
        let seed = rng.below(u64::MAX);
        let plain = {
            let mut sys = StorageSystem::new(topo.clone(), policy).unwrap();
            simulate(&mut sys, &traces, &cfg)
        };
        let quiet = {
            let mut sys = StorageSystem::new(topo.clone(), policy).unwrap();
            let mut faults = FaultState::new(FaultPlan::quiet(seed)).unwrap();
            let rep = simulate_faulted(&mut sys, &traces, &cfg, &mut faults);
            assert!(
                !faults.stats().any(),
                "case {case}: quiet plan injected a fault"
            );
            rep
        };
        assert_reports_bit_identical(&plain, &quiet, &format!("case {case} policy {policy:?}"));
    }
}

/// Striping never routes a block outside the storage nodes and is
/// deterministic per address.
#[test]
fn striping_is_total() {
    let mut rng = SplitMix64::new(0x57819E);
    let topo = Topology::paper_default();
    for case in 0..500 {
        let file = rng.below(4) as u32;
        let index = rng.below(10_000);
        let node = topo.storage_node_of_block(BlockAddr::new(file, index));
        assert!(node < topo.storage_nodes, "case {case}");
        assert_eq!(
            node,
            topo.storage_node_of_block(BlockAddr::new(file, index)),
            "case {case}"
        );
    }
}
