//! Property-based tests of the storage-cache simulator's invariants.
//!
//! Deterministic SplitMix64 case generation replaces `proptest`
//! (unavailable offline); failures carry a case index for replay.

use flo_linalg::SplitMix64;
use flo_sim::policies::demote;
use flo_sim::{BlockAddr, LruCore, PolicyKind, StorageSystem, ThreadTrace, Topology};

fn block_stream(rng: &mut SplitMix64) -> Vec<u64> {
    let len = rng.range_usize(1, 199);
    (0..len).map(|_| rng.below(40)).collect()
}

/// LRU inclusion (stack) property: a larger cache's hits are a
/// superset of a smaller one's on any trace.
#[test]
fn lru_stack_property() {
    let mut rng = SplitMix64::new(0x57AC);
    for case in 0..100 {
        let stream = block_stream(&mut rng);
        let mut small = LruCore::new(4);
        let mut large = LruCore::new(16);
        for &i in &stream {
            let b = BlockAddr::new(0, i);
            let hs = small.access(b);
            let hl = large.access(b);
            assert!(
                !hs || hl,
                "case {case}: small hit where large missed at block {i}"
            );
            small.insert(b);
            large.insert(b);
        }
        assert!(large.stats().hits >= small.stats().hits, "case {case}");
    }
}

/// The LRU cache never exceeds its capacity and never double-counts.
#[test]
fn lru_capacity_invariant() {
    let mut rng = SplitMix64::new(0xCA9);
    for case in 0..100 {
        let stream = block_stream(&mut rng);
        let cap = rng.range_usize(1, 11);
        let mut c = LruCore::new(cap);
        for &i in &stream {
            let b = BlockAddr::new(0, i);
            c.access(b);
            c.insert(b);
            assert!(c.len() <= cap, "case {case}");
            let listed = c.blocks_mru_to_lru();
            let mut dedup = listed.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(
                dedup.len(),
                listed.len(),
                "case {case}: duplicate resident block"
            );
        }
    }
}

/// DEMOTE keeps the two layers exclusive on any trace.
#[test]
fn demote_exclusivity() {
    let mut rng = SplitMix64::new(0xDE3);
    for case in 0..100 {
        let stream = block_stream(&mut rng);
        let mut upper = LruCore::new(3);
        let mut lower = LruCore::new(5);
        for &i in &stream {
            demote::access(&mut upper, &mut lower, BlockAddr::new(0, i));
            for b in upper.blocks_mru_to_lru() {
                assert!(
                    !lower.contains(b),
                    "case {case}: block {b:?} resident at both layers"
                );
            }
        }
    }
}

/// Any policy on any trace keeps hit counts within access counts, and
/// the simulation is deterministic.
#[test]
fn policies_consistent_and_deterministic() {
    let mut rng = SplitMix64::new(0x9071C7);
    for case in 0..40 {
        let n_streams = rng.range_usize(1, 3);
        let streams: Vec<Vec<u64>> = (0..n_streams).map(|_| block_stream(&mut rng)).collect();
        let policy = PolicyKind::all()[rng.range_usize(0, 2)];
        let topo = Topology::tiny();
        let traces: Vec<ThreadTrace> = streams
            .iter()
            .enumerate()
            .map(|(t, s)| {
                let mut tr = ThreadTrace::new(t, t % topo.compute_nodes);
                for &i in s {
                    tr.push(BlockAddr::new((i % 3) as u32, i));
                }
                tr
            })
            .collect();
        let run = || {
            let mut system = StorageSystem::new(topo.clone(), policy);
            flo_sim::simulate(&mut system, &traces, &Default::default())
        };
        let a = run();
        let b = run();
        assert!(a.layers.io.hits <= a.layers.io.accesses, "case {case}");
        assert!(
            a.layers.storage.hits <= a.layers.storage.accesses,
            "case {case}"
        );
        assert!(a.disk_sequential_reads <= a.disk_reads, "case {case}");
        assert_eq!(a.execution_time_ms, b.execution_time_ms, "case {case}");
        assert_eq!(a.disk_reads, b.disk_reads, "case {case}");
        // Every block request reaches the I/O layer exactly once (weighted
        // by coalesced element counts).
        let elements: u64 = traces.iter().map(|t| t.element_accesses()).sum();
        assert_eq!(a.layers.io.accesses, elements, "case {case}");
    }
}

/// Striping never routes a block outside the storage nodes and is
/// deterministic per address.
#[test]
fn striping_is_total() {
    let mut rng = SplitMix64::new(0x57819E);
    let topo = Topology::paper_default();
    for case in 0..500 {
        let file = rng.below(4) as u32;
        let index = rng.below(10_000);
        let node = topo.storage_node_of_block(BlockAddr::new(file, index));
        assert!(node < topo.storage_nodes, "case {case}");
        assert_eq!(
            node,
            topo.storage_node_of_block(BlockAddr::new(file, index)),
            "case {case}"
        );
    }
}
