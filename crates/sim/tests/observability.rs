//! Differential tests of the observer instrumentation.
//!
//! The contract of `flo-obs` is that instrumentation is *free* when
//! disabled and *truthful* when enabled:
//!
//! * the instrumented path under [`flo_obs::NullObserver`] (i.e. plain
//!   [`flo_sim::simulate`]) must produce bit-identical reports to the
//!   frozen pre-instrumentation copy in [`flo_sim::seedpath`], and
//! * a [`flo_obs::MetricsObserver`] must not perturb the simulation,
//!   while its own counters must agree with the report it rode along on.
//!
//! Deterministic SplitMix64 case generation replaces `proptest`
//! (unavailable offline); failures carry a case index for replay.

use flo_linalg::SplitMix64;
use flo_obs::{Layer, MetricsObserver, NullObserver, Observer};
use flo_sim::{
    simulate, simulate_observed, simulate_seed, simulate_sweep, simulate_sweep_observed, BlockAddr,
    PolicyKind, RunConfig, SimReport, StorageSystem, SweepPoint, ThreadTrace, Topology,
};

fn block_stream(rng: &mut SplitMix64) -> Vec<u64> {
    let len = rng.range_usize(1, 199);
    (0..len).map(|_| rng.below(40)).collect()
}

fn random_traces(rng: &mut SplitMix64, topo: &Topology) -> Vec<ThreadTrace> {
    let n = rng.range_usize(1, 4);
    (0..n)
        .map(|t| {
            let mut tr = ThreadTrace::new(t, t % topo.compute_nodes);
            for i in block_stream(rng) {
                tr.push(BlockAddr::new((i % 3) as u32, i));
            }
            tr
        })
        .collect()
}

fn random_topology(rng: &mut SplitMix64) -> Topology {
    let mut topo = Topology::tiny();
    topo.cache_ways = [2, 3, 4, usize::MAX][rng.range_usize(0, 3)];
    topo.io_cache_blocks = rng.range_usize(2, 24);
    topo.storage_cache_blocks = rng.range_usize(2, 32);
    topo
}

fn assert_reports_bit_identical(a: &SimReport, b: &SimReport, tag: &str) {
    assert_eq!(a.layers.io, b.layers.io, "{tag}: io layer");
    assert_eq!(a.layers.storage, b.layers.storage, "{tag}: storage layer");
    assert_eq!(a.disk_reads, b.disk_reads, "{tag}: disk reads");
    assert_eq!(
        a.disk_sequential_reads, b.disk_sequential_reads,
        "{tag}: sequential reads"
    );
    assert_eq!(a.demotions, b.demotions, "{tag}: demotions");
    assert_eq!(a.total_requests, b.total_requests, "{tag}: requests");
    assert_eq!(
        a.compute_ms_per_thread.to_bits(),
        b.compute_ms_per_thread.to_bits(),
        "{tag}: compute"
    );
    assert_eq!(
        a.execution_time_ms.to_bits(),
        b.execution_time_ms.to_bits(),
        "{tag}: execution time"
    );
    assert_eq!(
        a.thread_latency_ms.len(),
        b.thread_latency_ms.len(),
        "{tag}: thread count"
    );
    for (t, (x, y)) in a
        .thread_latency_ms
        .iter()
        .zip(&b.thread_latency_ms)
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{tag}: thread {t} latency");
    }
}

/// The null-observed path is the seed path: every policy, random traces
/// and topologies, bit-exact floats.
#[test]
fn null_observer_matches_frozen_seed_path() {
    let mut rng = SplitMix64::new(0x0B5E_57ED);
    for case in 0..60 {
        let topo = random_topology(&mut rng);
        let policy = PolicyKind::extended()[rng.range_usize(0, 3)];
        let traces = random_traces(&mut rng, &topo);
        let cfg = RunConfig {
            compute_ms_per_thread: rng.below(8) as f64,
        };
        let mut sys_live = StorageSystem::new(topo.clone(), policy).unwrap();
        let live = simulate(&mut sys_live, &traces, &cfg);
        let mut sys_seed = StorageSystem::new(topo, policy).unwrap();
        let seed = simulate_seed(&mut sys_seed, &traces, &cfg);
        assert_reports_bit_identical(&live, &seed, &format!("case {case} ({policy:?})"));
    }
}

/// An enabled observer rides along without perturbing the simulation,
/// and its counters agree with the report: weighted I/O accesses/hits
/// match the report's layer counters, disk totals match, and KARMA
/// routing tallies cover every request under that policy.
#[test]
fn metrics_observer_is_passive_and_consistent() {
    let mut rng = SplitMix64::new(0x0B5E_CC27);
    for case in 0..60 {
        let topo = random_topology(&mut rng);
        let policy = PolicyKind::extended()[rng.range_usize(0, 3)];
        let traces = random_traces(&mut rng, &topo);
        let cfg = RunConfig {
            compute_ms_per_thread: rng.below(8) as f64,
        };
        let mut sys_null = StorageSystem::new(topo.clone(), policy).unwrap();
        let base = simulate(&mut sys_null, &traces, &cfg);

        let mut metrics = MetricsObserver::new();
        let mut sys_obs = StorageSystem::new(topo, policy).unwrap();
        let observed = simulate_observed(&mut sys_obs, &traces, &cfg, &mut metrics);
        let tag = format!("case {case} ({policy:?})");
        assert_reports_bit_identical(&observed, &base, &tag);

        let io = metrics.layer_totals(Layer::Io);
        assert_eq!(io.weighted_accesses, base.layers.io.accesses, "{tag}");
        // The cache counts the `weight − 1` elements behind a block miss
        // as hits (served from the fetched block); the observer sees the
        // block-level outcome. The two agree through this identity.
        assert_eq!(
            io.weighted_accesses - (io.accesses - io.hits),
            base.layers.io.hits,
            "{tag}"
        );
        assert!(io.weighted_hits <= base.layers.io.hits, "{tag}");
        assert_eq!(io.accesses, base.total_requests, "{tag}");
        let storage = metrics.layer_totals(Layer::Storage);
        assert_eq!(storage.accesses, base.layers.storage.accesses, "{tag}");
        assert_eq!(storage.hits, base.layers.storage.hits, "{tag}");
        assert_eq!(metrics.disk_reads(), base.disk_reads, "{tag}");
        assert_eq!(
            metrics.disks.iter().map(|d| d.sequential).sum::<u64>(),
            base.disk_sequential_reads,
            "{tag}"
        );
        assert_eq!(
            metrics.demotions.iter().sum::<u64>(),
            base.demotions,
            "{tag}"
        );
        let karma_total = metrics.karma.upper + metrics.karma.lower + metrics.karma.bypass;
        if policy == PolicyKind::Karma {
            assert_eq!(karma_total, base.total_requests, "{tag}: karma routing");
        } else {
            assert_eq!(karma_total, 0, "{tag}: karma counters on non-karma policy");
        }
        assert!(
            !metrics.occupancy.is_empty(),
            "{tag}: missing occupancy snapshot"
        );
        for snap in &metrics.occupancy {
            let cap = match snap.layer {
                Layer::Io => sys_obs.topology().io_cache_blocks,
                Layer::Storage => sys_obs.topology().storage_cache_blocks,
            };
            let resident: u64 = snap.per_set.iter().map(|&s| u64::from(s)).sum();
            assert!(resident as usize <= cap, "{tag}: occupancy over capacity");
        }
    }
}

/// The observed sweep is passive too: per-point reports match the
/// unobserved sweep bit-for-bit, and each point's observer tallies match
/// its own report.
#[test]
fn observed_sweep_is_passive_and_consistent() {
    let mut rng = SplitMix64::new(0x0B5E_5EE9);
    for case in 0..25 {
        let topo = random_topology(&mut rng);
        let traces = random_traces(&mut rng, &topo);
        let points: Vec<SweepPoint> = (0..rng.range_usize(1, 5))
            .map(|_| SweepPoint {
                io_cache_blocks: rng.range_usize(1, 48),
                storage_cache_blocks: rng.range_usize(2, 64),
            })
            .collect();
        let cfg = RunConfig {
            compute_ms_per_thread: rng.below(8) as f64,
        };
        let plain = simulate_sweep(&topo, &points, &traces, &cfg).unwrap();
        let mut stream = MetricsObserver::new();
        let mut per_point = vec![MetricsObserver::new(); points.len()];
        let observed =
            simulate_sweep_observed(&topo, &points, &traces, &cfg, &mut stream, &mut per_point)
                .unwrap();
        assert_eq!(observed.len(), plain.len());
        for (k, (o, p)) in observed.iter().zip(&plain).enumerate() {
            let tag = format!("case {case} point {k}");
            assert_reports_bit_identical(o, p, &tag);
            let m = &per_point[k];
            let io = m.layer_totals(Layer::Io);
            assert_eq!(io.weighted_accesses, o.layers.io.accesses, "{tag}");
            assert_eq!(
                io.weighted_accesses - (io.accesses - io.hits),
                o.layers.io.hits,
                "{tag}"
            );
            let storage = m.layer_totals(Layer::Storage);
            assert_eq!(storage.accesses, o.layers.storage.accesses, "{tag}");
            assert_eq!(storage.hits, o.layers.storage.hits, "{tag}");
            assert_eq!(m.disk_reads(), o.disk_reads, "{tag}");
            assert_eq!(
                m.disks.iter().map(|d| d.sequential).sum::<u64>(),
                o.disk_sequential_reads,
                "{tag}"
            );
        }
        // Stack distances are a property of the shared classification
        // stream: warm + cold events cover every block request once.
        let requests: u64 = traces.iter().map(|t| t.len() as u64).sum();
        if let Some(first) = observed.first() {
            assert_eq!(first.total_requests, requests, "case {case}");
        }
        if stream.stack.count() + stream.cold > 0 {
            assert_eq!(
                stream.stack.count() + stream.cold,
                requests,
                "case {case}: stack-distance events"
            );
        }
    }
}

/// `Observer`'s default methods really are no-ops: a unit struct with no
/// overrides can observe a run (exercising every callback) and the
/// report still matches the seed path.
#[test]
fn default_observer_methods_are_noops() {
    struct Inert;
    impl Observer for Inert {}

    let mut rng = SplitMix64::new(0x1E97);
    let topo = random_topology(&mut rng);
    let traces = random_traces(&mut rng, &topo);
    let cfg = RunConfig::default();
    let mut sys_a = StorageSystem::new(topo.clone(), PolicyKind::DemoteLru).unwrap();
    let a = simulate_observed(&mut sys_a, &traces, &cfg, &mut Inert);
    let mut sys_b = StorageSystem::new(topo, PolicyKind::DemoteLru).unwrap();
    let b = simulate_seed(&mut sys_b, &traces, &cfg);
    assert_reports_bit_identical(&a, &b, "inert observer");
    // And NullObserver advertises itself as disabled while a default
    // impl stays enabled (batch work like occupancy snapshots keys on it).
    const { assert!(!NullObserver::ENABLED) };
    const { assert!(Inert::ENABLED) };
}
