//! Simulation reports.

use crate::cache::CacheStats;
use flo_json::Json;

/// Per-layer cache statistics as reported in Tables 2 and 3.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LayerStats {
    /// I/O-node layer counters.
    pub io: CacheStats,
    /// Storage-node layer counters.
    pub storage: CacheStats,
}

/// The outcome of one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Per-layer cache counters.
    pub layers: LayerStats,
    /// Total disk reads.
    pub disk_reads: u64,
    /// Disk reads that were sequential.
    pub disk_sequential_reads: u64,
    /// DEMOTE transfers performed (0 for non-demoting policies).
    pub demotions: u64,
    /// Per-thread accumulated I/O latency in milliseconds.
    pub thread_latency_ms: Vec<f64>,
    /// Compute time charged to every thread, in milliseconds. Compute is
    /// layout-independent and uniform across threads (see
    /// [`crate::sim::RunConfig`]), so a single scalar replaces the
    /// constant-broadcast vector older revisions carried.
    pub compute_ms_per_thread: f64,
    /// Estimated execution time: `max_t(compute_t + latency_t)`.
    pub execution_time_ms: f64,
    /// Total block requests issued.
    pub total_requests: u64,
}

impl SimReport {
    /// Version of the report's JSON schema. Serialized reports carry it
    /// as `schema_version`; [`SimReport::from_json`] rejects mismatches so
    /// downstream readers (`flostat`) fail loudly on incompatible
    /// artifacts instead of misparsing them. Bump on any field change.
    pub const SCHEMA_VERSION: u32 = 1;

    /// I/O-layer miss rate in [0, 1].
    pub fn io_miss_rate(&self) -> f64 {
        self.layers.io.miss_rate()
    }

    /// Storage-layer miss rate in [0, 1].
    pub fn storage_miss_rate(&self) -> f64 {
        self.layers.storage.miss_rate()
    }

    /// Fraction of disk reads that were sequential.
    pub fn disk_sequential_fraction(&self) -> f64 {
        if self.disk_reads == 0 {
            0.0
        } else {
            self.disk_sequential_reads as f64 / self.disk_reads as f64
        }
    }

    /// Aggregate I/O stall time across threads.
    pub fn total_io_ms(&self) -> f64 {
        self.thread_latency_ms.iter().sum()
    }

    /// JSON rendering for experiment artifacts (versioned; see
    /// [`SimReport::SCHEMA_VERSION`]).
    pub fn to_json(&self) -> Json {
        let layer = |s: &CacheStats| Json::obj().set("accesses", s.accesses).set("hits", s.hits);
        Json::obj()
            .set("schema_version", u64::from(Self::SCHEMA_VERSION))
            .set(
                "layers",
                Json::obj()
                    .set("io", layer(&self.layers.io))
                    .set("storage", layer(&self.layers.storage)),
            )
            .set("disk_reads", self.disk_reads)
            .set("disk_sequential_reads", self.disk_sequential_reads)
            .set("demotions", self.demotions)
            .set("thread_latency_ms", self.thread_latency_ms.clone())
            .set("compute_ms_per_thread", self.compute_ms_per_thread)
            .set("execution_time_ms", self.execution_time_ms)
            .set("total_requests", self.total_requests)
    }

    /// Parse a report serialized by [`to_json`](Self::to_json), rejecting
    /// missing fields and incompatible schema versions.
    pub fn from_json(json: &Json) -> Result<SimReport, String> {
        let num = |j: &Json, key: &str| {
            j.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("SimReport: missing numeric field `{key}`"))
        };
        let version = num(json, "schema_version")?;
        if version != f64::from(Self::SCHEMA_VERSION) {
            return Err(format!(
                "SimReport: schema_version {version} unsupported (this build reads {})",
                Self::SCHEMA_VERSION
            ));
        }
        let layers = json
            .get("layers")
            .ok_or("SimReport: missing `layers`".to_string())?;
        let layer = |key: &str| -> Result<CacheStats, String> {
            let l = layers
                .get(key)
                .ok_or_else(|| format!("SimReport: missing layer `{key}`"))?;
            Ok(CacheStats {
                accesses: num(l, "accesses")? as u64,
                hits: num(l, "hits")? as u64,
            })
        };
        let thread_latency_ms = json
            .get("thread_latency_ms")
            .and_then(Json::as_arr)
            .ok_or("SimReport: missing `thread_latency_ms`".to_string())?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or("SimReport: non-numeric latency".to_string())
            })
            .collect::<Result<Vec<f64>, String>>()?;
        Ok(SimReport {
            layers: LayerStats {
                io: layer("io")?,
                storage: layer("storage")?,
            },
            disk_reads: num(json, "disk_reads")? as u64,
            disk_sequential_reads: num(json, "disk_sequential_reads")? as u64,
            demotions: num(json, "demotions")? as u64,
            thread_latency_ms,
            compute_ms_per_thread: num(json, "compute_ms_per_thread")?,
            execution_time_ms: num(json, "execution_time_ms")?,
            total_requests: num(json, "total_requests")? as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut r = SimReport::default();
        r.layers.io.accesses = 10;
        r.layers.io.hits = 7;
        r.layers.storage.accesses = 3;
        r.layers.storage.hits = 1;
        r.disk_reads = 2;
        r.disk_sequential_reads = 1;
        assert!((r.io_miss_rate() - 0.3).abs() < 1e-12);
        assert!((r.storage_miss_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.disk_sequential_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_zero_rates() {
        let r = SimReport::default();
        assert_eq!(r.io_miss_rate(), 0.0);
        assert_eq!(r.disk_sequential_fraction(), 0.0);
        assert_eq!(r.total_io_ms(), 0.0);
    }

    #[test]
    fn serializes_to_json() {
        let r = SimReport {
            disk_reads: 5,
            execution_time_ms: 1.5,
            ..SimReport::default()
        };
        let json = r.to_json();
        assert_eq!(json.get("disk_reads").and_then(Json::as_f64), Some(5.0));
        assert_eq!(
            json.get("execution_time_ms").and_then(Json::as_f64),
            Some(1.5)
        );
        assert_eq!(
            json.get("schema_version").and_then(Json::as_f64),
            Some(f64::from(SimReport::SCHEMA_VERSION))
        );
        assert!(flo_json::parse(&json.pretty()).is_ok());
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = SimReport {
            layers: LayerStats {
                io: CacheStats {
                    accesses: 1234,
                    hits: 987,
                },
                storage: CacheStats {
                    accesses: 321,
                    hits: 45,
                },
            },
            disk_reads: 276,
            disk_sequential_reads: 100,
            demotions: 7,
            thread_latency_ms: vec![1.25, 0.5, 9.875],
            compute_ms_per_thread: 2.5,
            execution_time_ms: 12.375,
            total_requests: 555,
        };
        // Through text and back: parse(pretty(to_json)) → from_json.
        let text = r.to_json().pretty();
        let back = SimReport::from_json(&flo_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.layers.io, r.layers.io);
        assert_eq!(back.layers.storage, r.layers.storage);
        assert_eq!(back.disk_reads, r.disk_reads);
        assert_eq!(back.disk_sequential_reads, r.disk_sequential_reads);
        assert_eq!(back.demotions, r.demotions);
        assert_eq!(back.thread_latency_ms, r.thread_latency_ms);
        assert_eq!(
            back.compute_ms_per_thread.to_bits(),
            r.compute_ms_per_thread.to_bits()
        );
        assert_eq!(
            back.execution_time_ms.to_bits(),
            r.execution_time_ms.to_bits()
        );
        assert_eq!(back.total_requests, r.total_requests);
        // And the re-serialization is byte-identical.
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn from_json_rejects_incompatible_artifacts() {
        let good = SimReport::default().to_json();
        assert!(SimReport::from_json(&good).is_ok());
        // Wrong version.
        let bad = Json::obj().set("schema_version", 999u64);
        let err = SimReport::from_json(&bad).unwrap_err();
        assert!(err.contains("999"), "{err}");
        // Missing version entirely (pre-versioned artifact).
        let legacy = Json::obj().set("disk_reads", 1u64);
        assert!(SimReport::from_json(&legacy).is_err());
        // Truncated object.
        let partial = Json::obj().set("schema_version", u64::from(SimReport::SCHEMA_VERSION));
        assert!(SimReport::from_json(&partial).is_err());
    }
}
