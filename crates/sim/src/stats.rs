//! Simulation reports.

use crate::cache::CacheStats;
use flo_json::Json;

/// Per-layer cache statistics as reported in Tables 2 and 3.
#[derive(Clone, Copy, Debug, Default)]
pub struct LayerStats {
    /// I/O-node layer counters.
    pub io: CacheStats,
    /// Storage-node layer counters.
    pub storage: CacheStats,
}

/// The outcome of one simulated run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Per-layer cache counters.
    pub layers: LayerStats,
    /// Total disk reads.
    pub disk_reads: u64,
    /// Disk reads that were sequential.
    pub disk_sequential_reads: u64,
    /// DEMOTE transfers performed (0 for non-demoting policies).
    pub demotions: u64,
    /// Per-thread accumulated I/O latency in milliseconds.
    pub thread_latency_ms: Vec<f64>,
    /// Compute time charged to every thread, in milliseconds. Compute is
    /// layout-independent and uniform across threads (see
    /// [`crate::sim::RunConfig`]), so a single scalar replaces the
    /// constant-broadcast vector older revisions carried.
    pub compute_ms_per_thread: f64,
    /// Estimated execution time: `max_t(compute_t + latency_t)`.
    pub execution_time_ms: f64,
    /// Total block requests issued.
    pub total_requests: u64,
}

impl SimReport {
    /// I/O-layer miss rate in [0, 1].
    pub fn io_miss_rate(&self) -> f64 {
        self.layers.io.miss_rate()
    }

    /// Storage-layer miss rate in [0, 1].
    pub fn storage_miss_rate(&self) -> f64 {
        self.layers.storage.miss_rate()
    }

    /// Fraction of disk reads that were sequential.
    pub fn disk_sequential_fraction(&self) -> f64 {
        if self.disk_reads == 0 {
            0.0
        } else {
            self.disk_sequential_reads as f64 / self.disk_reads as f64
        }
    }

    /// Aggregate I/O stall time across threads.
    pub fn total_io_ms(&self) -> f64 {
        self.thread_latency_ms.iter().sum()
    }

    /// JSON rendering for experiment artifacts.
    pub fn to_json(&self) -> Json {
        let layer = |s: &CacheStats| Json::obj().set("accesses", s.accesses).set("hits", s.hits);
        Json::obj()
            .set(
                "layers",
                Json::obj()
                    .set("io", layer(&self.layers.io))
                    .set("storage", layer(&self.layers.storage)),
            )
            .set("disk_reads", self.disk_reads)
            .set("disk_sequential_reads", self.disk_sequential_reads)
            .set("demotions", self.demotions)
            .set("thread_latency_ms", self.thread_latency_ms.clone())
            .set("compute_ms_per_thread", self.compute_ms_per_thread)
            .set("execution_time_ms", self.execution_time_ms)
            .set("total_requests", self.total_requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut r = SimReport::default();
        r.layers.io.accesses = 10;
        r.layers.io.hits = 7;
        r.layers.storage.accesses = 3;
        r.layers.storage.hits = 1;
        r.disk_reads = 2;
        r.disk_sequential_reads = 1;
        assert!((r.io_miss_rate() - 0.3).abs() < 1e-12);
        assert!((r.storage_miss_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.disk_sequential_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_zero_rates() {
        let r = SimReport::default();
        assert_eq!(r.io_miss_rate(), 0.0);
        assert_eq!(r.disk_sequential_fraction(), 0.0);
        assert_eq!(r.total_io_ms(), 0.0);
    }

    #[test]
    fn serializes_to_json() {
        let r = SimReport {
            disk_reads: 5,
            execution_time_ms: 1.5,
            ..SimReport::default()
        };
        let json = r.to_json();
        assert_eq!(json.get("disk_reads").and_then(Json::as_f64), Some(5.0));
        assert_eq!(
            json.get("execution_time_ms").and_then(Json::as_f64),
            Some(1.5)
        );
        assert!(flo_json::parse(&json.pretty()).is_ok());
    }
}
