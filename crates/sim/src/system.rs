//! The assembled storage system: routing + caches + disks + policy walk.

use crate::block::BlockAddr;
use crate::cache::{CacheStats, SetAssocCache};
use crate::disk::{DiskModel, DiskState};
use crate::error::SimError;
use crate::fault::{FaultHook, NoFaults};
use crate::policies::demote::{self, DemoteOutcome};
use crate::policies::karma::{KarmaAssignment, KarmaHints, KarmaLevel};
use crate::policies::mq::MqCache;
use crate::policies::PolicyKind;
use crate::topology::Topology;
use flo_obs::{KarmaRoute, Layer, NullObserver, Observer};

/// Latency parameters of the non-disk path, in milliseconds per block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Compute node ⇄ I/O node transfer + I/O cache lookup.
    pub io_hit_ms: f64,
    /// Additional I/O node ⇄ storage node transfer + storage cache lookup.
    pub storage_hit_ms: f64,
    /// Cost of demoting one block (DEMOTE-LRU's extra transfer).
    pub demote_ms: f64,
}

impl CostModel {
    /// Defaults: a gigabit-class interconnect moving 128 KB blocks (the
    /// default 64-element data block).
    pub fn paper_default() -> CostModel {
        CostModel::for_block_elems(64)
    }

    /// Cost model for a given block size: each hop has a fixed per-request
    /// overhead plus a transfer component proportional to the block size
    /// (relative to the default 64-element block).
    pub fn for_block_elems(block_elems: u64) -> CostModel {
        let r = block_elems as f64 / 64.0;
        CostModel {
            io_hit_ms: 0.05 + 0.15 * r,
            storage_hit_ms: 0.10 + 0.20 * r,
            demote_ms: 0.05 + 0.10 * r,
        }
    }
}

/// A simulated storage hierarchy in a particular policy configuration.
///
/// Per-access entry point is [`StorageSystem::access`]; it returns the
/// latency charged to the issuing thread and updates per-layer statistics.
/// The observed variants ([`StorageSystem::access_observed`]) additionally
/// report per-event telemetry through a monomorphized
/// [`flo_obs::Observer`]; the plain entry points instantiate them with
/// [`NullObserver`], compiling to the uninstrumented walk (the frozen
/// copy in [`crate::seedpath`] exists to assert exactly that).
///
/// Fields are `pub(crate)` so `seedpath` can drive the same state through
/// its frozen access walk.
pub struct StorageSystem {
    pub(crate) topo: Topology,
    pub(crate) policy: PolicyKind,
    pub(crate) costs: CostModel,
    pub(crate) disk_model: DiskModel,
    pub(crate) io_caches: Vec<SetAssocCache>,
    pub(crate) storage_caches: Vec<SetAssocCache>,
    pub(crate) mq_caches: Vec<MqCache>,
    pub(crate) disks: Vec<DiskState>,
    pub(crate) karma: KarmaAssignment,
    pub(crate) demotions: u64,
}

impl StorageSystem {
    /// Build a system for `topo` under `policy`, with hop and disk costs
    /// derived from the topology's block size. Fails with
    /// [`SimError::InvalidTopology`] on a degenerate topology.
    pub fn new(topo: Topology, policy: PolicyKind) -> Result<StorageSystem, SimError> {
        let costs = CostModel::for_block_elems(topo.block_elems);
        let disk = DiskModel::for_block_elems(topo.block_elems);
        StorageSystem::with_costs(topo, policy, costs, disk)
    }

    /// Build with explicit cost models.
    pub fn with_costs(
        topo: Topology,
        policy: PolicyKind,
        costs: CostModel,
        disk_model: DiskModel,
    ) -> Result<StorageSystem, SimError> {
        topo.validate()?;
        let ways = topo.cache_ways;
        let io_caches = (0..topo.io_nodes)
            .map(|_| SetAssocCache::new(topo.io_cache_blocks, ways))
            .collect();
        let storage_caches = (0..topo.storage_nodes)
            .map(|_| SetAssocCache::new(topo.storage_cache_blocks, ways))
            .collect();
        let disks = (0..topo.storage_nodes)
            .map(|_| DiskState::default())
            .collect();
        let mq_caches = if policy == PolicyKind::MqSecondLevel {
            (0..topo.storage_nodes)
                .map(|_| MqCache::new(topo.storage_cache_blocks))
                .collect()
        } else {
            Vec::new()
        };
        Ok(StorageSystem {
            topo,
            policy,
            costs,
            disk_model,
            io_caches,
            storage_caches,
            mq_caches,
            disks,
            karma: KarmaAssignment::default(),
            demotions: 0,
        })
    }

    /// Install KARMA's application hints (required before a
    /// [`PolicyKind::Karma`] run; ignored by other policies).
    pub fn set_karma_hints(&mut self, hints: &KarmaHints) {
        self.karma = KarmaAssignment::allocate(hints, &self.topo);
    }

    /// The topology this system simulates.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The active policy.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Issue one block request from `compute_node`; returns the latency in
    /// milliseconds.
    pub fn access(&mut self, compute_node: usize, block: BlockAddr) -> f64 {
        self.access_weighted(compute_node, block, 1)
    }

    /// Issue one coalesced block request serving `weight` element
    /// accesses. The I/O-layer cache is charged `weight` accesses (the
    /// buffered element reads); the storage layer and disk see at most one
    /// block request. Returns the latency in milliseconds.
    pub fn access_weighted(&mut self, compute_node: usize, block: BlockAddr, weight: u32) -> f64 {
        self.access_observed(compute_node, block, weight, &mut NullObserver)
    }

    /// [`access_weighted`](Self::access_weighted), reporting per-event
    /// telemetry (cache lookups, evictions, demotions, disk reads, KARMA
    /// routing) to `obs`. Observers receive events only — the simulated
    /// behavior and returned latency are identical for every observer.
    pub fn access_observed<O: Observer>(
        &mut self,
        compute_node: usize,
        block: BlockAddr,
        weight: u32,
        obs: &mut O,
    ) -> f64 {
        self.access_faulted(compute_node, block, weight, obs, &mut NoFaults)
    }

    /// [`access_observed`](Self::access_observed) under a fault hook: the
    /// hook ticks its schedule clock, may reroute the request around an
    /// outage, and may inflate the disk cost (stragglers, transient-error
    /// retries). With [`NoFaults`] every hook site monomorphizes away and
    /// this *is* `access_observed`.
    pub fn access_faulted<O: Observer, F: FaultHook>(
        &mut self,
        compute_node: usize,
        block: BlockAddr,
        weight: u32,
        obs: &mut O,
        faults: &mut F,
    ) -> f64 {
        if F::ACTIVE {
            faults.on_request(self, obs);
        }
        let io_idx = self.topo.io_node_of_compute(compute_node);
        let mut sc_idx = self.topo.storage_node_of_block(block);
        if F::ACTIVE {
            sc_idx = faults.route(&self.topo, block, sc_idx, obs);
        }
        match self.policy {
            PolicyKind::LruInclusive => {
                self.access_inclusive(io_idx, sc_idx, block, weight, obs, faults)
            }
            PolicyKind::DemoteLru => self.access_demote(io_idx, sc_idx, block, weight, obs, faults),
            PolicyKind::Karma => self.access_karma(io_idx, sc_idx, block, weight, obs, faults),
            PolicyKind::MqSecondLevel => self.access_mq(io_idx, sc_idx, block, weight, obs, faults),
        }
    }

    fn disk_read<O: Observer, F: FaultHook>(
        &mut self,
        sc_idx: usize,
        block: BlockAddr,
        obs: &mut O,
        faults: &mut F,
    ) -> f64 {
        let (ms, sequential) =
            self.disks[sc_idx].read_classified(block, &self.disk_model, self.topo.storage_nodes);
        obs.disk_read(sc_idx, sequential, ms);
        if F::ACTIVE {
            faults.disk_cost(sc_idx, ms, obs)
        } else {
            ms
        }
    }

    fn access_inclusive<O: Observer, F: FaultHook>(
        &mut self,
        io_idx: usize,
        sc_idx: usize,
        block: BlockAddr,
        weight: u32,
        obs: &mut O,
        faults: &mut F,
    ) -> f64 {
        if self.io_caches[io_idx].access_weighted(block, weight) {
            obs.cache_access(Layer::Io, io_idx, true, weight);
            return self.costs.io_hit_ms;
        }
        obs.cache_access(Layer::Io, io_idx, false, weight);
        // `insert_absent`: the block provably missed the layer it is being
        // installed into, and nothing touched that layer since.
        if self.storage_caches[sc_idx].access(block) {
            obs.cache_access(Layer::Storage, sc_idx, true, 1);
            if self.io_caches[io_idx].insert_absent(block).is_some() {
                obs.eviction(Layer::Io, io_idx);
            }
            return self.costs.io_hit_ms + self.costs.storage_hit_ms;
        }
        obs.cache_access(Layer::Storage, sc_idx, false, 1);
        let disk = self.disk_read(sc_idx, block, obs, faults);
        // Inclusive: the block is installed at both layers.
        if self.storage_caches[sc_idx].insert_absent(block).is_some() {
            obs.eviction(Layer::Storage, sc_idx);
        }
        if self.io_caches[io_idx].insert_absent(block).is_some() {
            obs.eviction(Layer::Io, io_idx);
        }
        self.costs.io_hit_ms + self.costs.storage_hit_ms + disk
    }

    fn access_demote<O: Observer, F: FaultHook>(
        &mut self,
        io_idx: usize,
        sc_idx: usize,
        block: BlockAddr,
        weight: u32,
        obs: &mut O,
        faults: &mut F,
    ) -> f64 {
        let out = demote::access_weighted(
            &mut self.io_caches[io_idx],
            &mut self.storage_caches[sc_idx],
            block,
            weight,
        );
        match out {
            DemoteOutcome::UpperHit => {
                obs.cache_access(Layer::Io, io_idx, true, weight);
                self.costs.io_hit_ms
            }
            DemoteOutcome::LowerHit { demoted } => {
                obs.cache_access(Layer::Io, io_idx, false, weight);
                obs.cache_access(Layer::Storage, sc_idx, true, 1);
                if demoted {
                    self.demotions += 1;
                    obs.eviction(Layer::Io, io_idx);
                    obs.demotion(io_idx);
                }
                self.costs.io_hit_ms
                    + self.costs.storage_hit_ms
                    + if demoted { self.costs.demote_ms } else { 0.0 }
            }
            DemoteOutcome::DiskRead { demoted } => {
                obs.cache_access(Layer::Io, io_idx, false, weight);
                obs.cache_access(Layer::Storage, sc_idx, false, 1);
                if demoted {
                    self.demotions += 1;
                    obs.eviction(Layer::Io, io_idx);
                    obs.demotion(io_idx);
                }
                let disk = self.disk_read(sc_idx, block, obs, faults);
                self.costs.io_hit_ms
                    + self.costs.storage_hit_ms
                    + disk
                    + if demoted { self.costs.demote_ms } else { 0.0 }
            }
        }
    }

    fn access_karma<O: Observer, F: FaultHook>(
        &mut self,
        io_idx: usize,
        sc_idx: usize,
        block: BlockAddr,
        weight: u32,
        obs: &mut O,
        faults: &mut F,
    ) -> f64 {
        match self.karma.level_for(io_idx, block.file) {
            KarmaLevel::Io => {
                obs.karma_route(KarmaRoute::Upper);
                // Range partitioned into the I/O layer; the storage layer
                // read-discards on its behalf.
                if self.io_caches[io_idx].access_weighted(block, weight) {
                    obs.cache_access(Layer::Io, io_idx, true, weight);
                    return self.costs.io_hit_ms;
                }
                obs.cache_access(Layer::Io, io_idx, false, weight);
                let disk = self.disk_read(sc_idx, block, obs, faults);
                if self.io_caches[io_idx].insert_absent(block).is_some() {
                    obs.eviction(Layer::Io, io_idx);
                }
                self.costs.io_hit_ms + self.costs.storage_hit_ms + disk
            }
            KarmaLevel::Storage => {
                obs.karma_route(KarmaRoute::Lower);
                // The I/O layer does not cache this range (exclusive): the
                // lookup below still counts as an I/O-layer miss.
                let io_hit = self.io_caches[io_idx].access_weighted(block, weight);
                obs.cache_access(Layer::Io, io_idx, io_hit, weight);
                if self.storage_caches[sc_idx].access(block) {
                    obs.cache_access(Layer::Storage, sc_idx, true, 1);
                    return self.costs.io_hit_ms + self.costs.storage_hit_ms;
                }
                obs.cache_access(Layer::Storage, sc_idx, false, 1);
                let disk = self.disk_read(sc_idx, block, obs, faults);
                if self.storage_caches[sc_idx].insert_absent(block).is_some() {
                    obs.eviction(Layer::Storage, sc_idx);
                }
                self.costs.io_hit_ms + self.costs.storage_hit_ms + disk
            }
            KarmaLevel::Bypass => {
                obs.karma_route(KarmaRoute::Bypass);
                let io_hit = self.io_caches[io_idx].access_weighted(block, weight);
                obs.cache_access(Layer::Io, io_idx, io_hit, weight);
                let sc_hit = self.storage_caches[sc_idx].access(block);
                obs.cache_access(Layer::Storage, sc_idx, sc_hit, 1);
                let disk = self.disk_read(sc_idx, block, obs, faults);
                self.costs.io_hit_ms + self.costs.storage_hit_ms + disk
            }
        }
    }

    fn access_mq<O: Observer, F: FaultHook>(
        &mut self,
        io_idx: usize,
        sc_idx: usize,
        block: BlockAddr,
        weight: u32,
        obs: &mut O,
        faults: &mut F,
    ) -> f64 {
        if self.io_caches[io_idx].access_weighted(block, weight) {
            obs.cache_access(Layer::Io, io_idx, true, weight);
            return self.costs.io_hit_ms;
        }
        obs.cache_access(Layer::Io, io_idx, false, weight);
        if self.mq_caches[sc_idx].access(block) {
            obs.cache_access(Layer::Storage, sc_idx, true, 1);
            if self.io_caches[io_idx].insert_absent(block).is_some() {
                obs.eviction(Layer::Io, io_idx);
            }
            return self.costs.io_hit_ms + self.costs.storage_hit_ms;
        }
        obs.cache_access(Layer::Storage, sc_idx, false, 1);
        let disk = self.disk_read(sc_idx, block, obs, faults);
        if self.mq_caches[sc_idx].insert(block).is_some() {
            obs.eviction(Layer::Storage, sc_idx);
        }
        if self.io_caches[io_idx].insert_absent(block).is_some() {
            obs.eviction(Layer::Io, io_idx);
        }
        self.costs.io_hit_ms + self.costs.storage_hit_ms + disk
    }

    /// Fault-injected full flush of I/O node `node`'s cache; returns the
    /// resident blocks dropped.
    pub(crate) fn flush_io_cache(&mut self, node: usize) -> usize {
        self.io_caches[node].invalidate_all()
    }

    /// Fault-injected capacity shrink of I/O node `node`'s cache: drops
    /// every second set (parity chosen by the fault schedule).
    pub(crate) fn shrink_io_cache(&mut self, node: usize, parity: usize) -> usize {
        self.io_caches[node].invalidate_half(parity)
    }

    /// Fault-injected full flush of storage node `node`'s cache (the MQ
    /// cache under [`PolicyKind::MqSecondLevel`], the set-associative one
    /// otherwise).
    pub(crate) fn flush_storage_cache(&mut self, node: usize) -> usize {
        if self.policy == PolicyKind::MqSecondLevel {
            self.mq_caches[node].invalidate_all()
        } else {
            self.storage_caches[node].invalidate_all()
        }
    }

    /// Fault-injected capacity shrink of storage node `node`'s cache. MQ
    /// caches have no set structure, so they flush fully.
    pub(crate) fn shrink_storage_cache(&mut self, node: usize, parity: usize) -> usize {
        if self.policy == PolicyKind::MqSecondLevel {
            self.mq_caches[node].invalidate_all()
        } else {
            self.storage_caches[node].invalidate_half(parity)
        }
    }

    /// Report every cache's end-of-run per-set occupancy to `obs` (MQ
    /// caches have no set structure and are skipped).
    pub fn snapshot_occupancy<O: Observer>(&self, obs: &mut O) {
        for (n, c) in self.io_caches.iter().enumerate() {
            obs.occupancy(Layer::Io, n, &c.set_occupancies());
        }
        for (n, c) in self.storage_caches.iter().enumerate() {
            obs.occupancy(Layer::Storage, n, &c.set_occupancies());
        }
    }

    /// Aggregated I/O-layer statistics.
    pub fn io_layer_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in &self.io_caches {
            s.merge(&c.stats());
        }
        s
    }

    /// Aggregated storage-layer statistics.
    pub fn storage_layer_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in &self.storage_caches {
            s.merge(&c.stats());
        }
        for c in &self.mq_caches {
            s.merge(&c.stats());
        }
        s
    }

    /// Total disk reads and how many were sequential.
    pub fn disk_stats(&self) -> (u64, u64) {
        let reads = self.disks.iter().map(|d| d.reads).sum();
        let seq = self.disks.iter().map(|d| d.sequential_reads).sum();
        (reads, seq)
    }

    /// Number of DEMOTE transfers performed.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(0, i)
    }

    fn tiny_system(policy: PolicyKind) -> StorageSystem {
        StorageSystem::new(Topology::tiny(), policy).unwrap()
    }

    /// The cost model a tiny-topology system uses (block-size scaled).
    fn tiny_costs() -> CostModel {
        CostModel::for_block_elems(Topology::tiny().block_elems)
    }

    #[test]
    fn inclusive_cold_then_warm() {
        let mut sys = tiny_system(PolicyKind::LruInclusive);
        let cold = sys.access(0, b(1));
        let warm = sys.access(0, b(1));
        assert!(cold > warm, "cold access must cost more ({cold} vs {warm})");
        assert_eq!(warm, tiny_costs().io_hit_ms);
        let (reads, _) = sys.disk_stats();
        assert_eq!(reads, 1);
    }

    #[test]
    fn inclusive_keeps_copies_at_both_layers() {
        let mut sys = tiny_system(PolicyKind::LruInclusive);
        sys.access(0, b(1));
        // A different compute node behind a *different* I/O node misses at
        // the I/O layer but hits the shared storage cache.
        let latency = sys.access(2, b(1));
        let c = tiny_costs();
        assert_eq!(latency, c.io_hit_ms + c.storage_hit_ms);
        let (reads, _) = sys.disk_stats();
        assert_eq!(reads, 1, "storage-cache hit must not touch disk");
    }

    #[test]
    fn sibling_compute_nodes_share_io_cache() {
        let mut sys = tiny_system(PolicyKind::LruInclusive);
        sys.access(0, b(1));
        // Compute node 1 shares I/O node 0 with compute node 0.
        let latency = sys.access(1, b(1));
        assert_eq!(latency, tiny_costs().io_hit_ms);
    }

    #[test]
    fn layer_stats_accumulate() {
        let mut sys = tiny_system(PolicyKind::LruInclusive);
        sys.access(0, b(1));
        sys.access(0, b(1));
        sys.access(0, b(2));
        let io = sys.io_layer_stats();
        assert_eq!(io.accesses, 3);
        assert_eq!(io.hits, 1);
        let sc = sys.storage_layer_stats();
        // Storage layer sees only the two I/O misses.
        assert_eq!(sc.accesses, 2);
        assert_eq!(sc.hits, 0);
    }

    #[test]
    fn demote_policy_counts_demotions() {
        let mut topo = Topology::tiny();
        topo.io_cache_blocks = 1;
        let mut sys = StorageSystem::new(topo, PolicyKind::DemoteLru).unwrap();
        sys.access(0, b(1));
        sys.access(0, b(2)); // evicts 1 → demotion
        assert!(sys.demotions() >= 1);
        // Block 1 now hits at the storage layer.
        let latency = sys.access(0, b(1));
        let c = tiny_costs();
        assert!(
            latency
                < c.io_hit_ms + c.storage_hit_ms + DiskModel::paper_default().sequential_ms() + 1.0
        );
        let (reads, _) = sys.disk_stats();
        assert_eq!(reads, 2, "demoted block must be served from storage cache");
    }

    #[test]
    fn karma_bypass_always_reads_disk() {
        let mut sys = tiny_system(PolicyKind::Karma);
        // Hint an enormous cold range for file 0 → Bypass.
        sys.set_karma_hints(&KarmaHints::from_triples(&[(0, 10_000, 1)]));
        sys.access(0, b(1));
        sys.access(0, b(1));
        let (reads, _) = sys.disk_stats();
        assert_eq!(reads, 2, "bypass range must not be cached");
    }

    #[test]
    fn karma_io_range_is_cached_high() {
        let mut sys = tiny_system(PolicyKind::Karma);
        sys.set_karma_hints(&KarmaHints::from_triples(&[(0, 4, 1000)]));
        sys.access(0, b(1));
        let warm = sys.access(0, b(1));
        assert_eq!(warm, tiny_costs().io_hit_ms);
    }

    #[test]
    fn karma_storage_range_shared_across_io_nodes() {
        let mut sys = tiny_system(PolicyKind::Karma);
        // File 0 too big for one I/O cache (8) but fits storage (16);
        // file 1 is small and hot → admitted at the I/O caches.
        sys.set_karma_hints(&KarmaHints::from_triples(&[(0, 12, 100), (1, 4, 1000)]));
        sys.access(0, b(1));
        let warm = sys.access(2, b(1)); // other I/O node, same storage cache
        let c = tiny_costs();
        assert_eq!(warm, c.io_hit_ms + c.storage_hit_ms);
        let (reads, _) = sys.disk_stats();
        assert_eq!(reads, 1);
    }

    #[test]
    fn striping_spreads_disk_load() {
        let mut topo = Topology::tiny();
        topo.storage_nodes = 2;
        topo.io_cache_blocks = 1;
        topo.storage_cache_blocks = 1;
        let mut sys = StorageSystem::new(topo, PolicyKind::LruInclusive).unwrap();
        for i in 0..100 {
            sys.access(0, b(i % 50));
        }
        let (reads, _) = sys.disk_stats();
        assert!(reads > 0);
    }
}
