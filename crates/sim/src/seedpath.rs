//! The frozen, uninstrumented simulation path.
//!
//! This module is a verbatim copy of [`crate::simulate`] and the
//! [`crate::system::StorageSystem`] access walk as they stood *before*
//! observer instrumentation was threaded through them. It exists for two
//! guards (the same role `legacy.rs` plays for the trace fast path):
//!
//! * the differential tests in `tests/observability.rs` assert that the
//!   instrumented path under [`flo_obs::NullObserver`] produces
//!   bit-identical [`SimReport`]s on random traces and topologies, and
//! * `perfstats --obs-gate` measures instrumented-null against this copy
//!   and fails the build when the overhead exceeds the budget — the
//!   monomorphized null callbacks must compile to nothing.
//!
//! Do not "improve" this module alongside the live path; its value is
//! that it does not change.

use crate::block::BlockAddr;
use crate::policies::demote::{self, DemoteOutcome};
use crate::policies::karma::KarmaLevel;
use crate::policies::PolicyKind;
use crate::sim::{RunConfig, INTERLEAVE_SEED};
use crate::stats::{LayerStats, SimReport};
use crate::system::StorageSystem;
use crate::trace::{JitterInterleaver, ThreadTrace};

/// [`crate::simulate`] as it was before instrumentation: same
/// interleaving, same access walk, no observer parameter anywhere.
pub fn simulate_seed(
    system: &mut StorageSystem,
    traces: &[ThreadTrace],
    cfg: &RunConfig,
) -> SimReport {
    let mut latency = vec![0.0f64; traces.len()];
    let mut total_requests = 0u64;
    for (t, entry) in JitterInterleaver::new(traces, INTERLEAVE_SEED) {
        let ms = access_weighted(system, traces[t].compute_node, entry.block, entry.count);
        latency[t] += ms;
        total_requests += 1;
    }
    let execution_time_ms = latency
        .iter()
        .map(|l| l + cfg.compute_ms_per_thread)
        .fold(0.0f64, f64::max);
    let (disk_reads, disk_sequential_reads) = system.disk_stats();
    SimReport {
        layers: LayerStats {
            io: system.io_layer_stats(),
            storage: system.storage_layer_stats(),
        },
        disk_reads,
        disk_sequential_reads,
        demotions: system.demotions(),
        thread_latency_ms: latency,
        compute_ms_per_thread: cfg.compute_ms_per_thread,
        execution_time_ms,
        total_requests,
    }
}

fn access_weighted(
    sys: &mut StorageSystem,
    compute_node: usize,
    block: BlockAddr,
    weight: u32,
) -> f64 {
    let io_idx = sys.topo.io_node_of_compute(compute_node);
    let sc_idx = sys.topo.storage_node_of_block(block);
    match sys.policy {
        PolicyKind::LruInclusive => access_inclusive(sys, io_idx, sc_idx, block, weight),
        PolicyKind::DemoteLru => access_demote(sys, io_idx, sc_idx, block, weight),
        PolicyKind::Karma => access_karma(sys, io_idx, sc_idx, block, weight),
        PolicyKind::MqSecondLevel => access_mq(sys, io_idx, sc_idx, block, weight),
    }
}

fn disk_read(sys: &mut StorageSystem, sc_idx: usize, block: BlockAddr) -> f64 {
    sys.disks[sc_idx].read(block, &sys.disk_model, sys.topo.storage_nodes)
}

fn access_inclusive(
    sys: &mut StorageSystem,
    io_idx: usize,
    sc_idx: usize,
    block: BlockAddr,
    weight: u32,
) -> f64 {
    if sys.io_caches[io_idx].access_weighted(block, weight) {
        return sys.costs.io_hit_ms;
    }
    if sys.storage_caches[sc_idx].access(block) {
        sys.io_caches[io_idx].insert_absent(block);
        return sys.costs.io_hit_ms + sys.costs.storage_hit_ms;
    }
    let disk = disk_read(sys, sc_idx, block);
    sys.storage_caches[sc_idx].insert_absent(block);
    sys.io_caches[io_idx].insert_absent(block);
    sys.costs.io_hit_ms + sys.costs.storage_hit_ms + disk
}

fn access_demote(
    sys: &mut StorageSystem,
    io_idx: usize,
    sc_idx: usize,
    block: BlockAddr,
    weight: u32,
) -> f64 {
    let out = demote::access_weighted(
        &mut sys.io_caches[io_idx],
        &mut sys.storage_caches[sc_idx],
        block,
        weight,
    );
    match out {
        DemoteOutcome::UpperHit => sys.costs.io_hit_ms,
        DemoteOutcome::LowerHit { demoted } => {
            if demoted {
                sys.demotions += 1;
            }
            sys.costs.io_hit_ms
                + sys.costs.storage_hit_ms
                + if demoted { sys.costs.demote_ms } else { 0.0 }
        }
        DemoteOutcome::DiskRead { demoted } => {
            if demoted {
                sys.demotions += 1;
            }
            let disk = disk_read(sys, sc_idx, block);
            sys.costs.io_hit_ms
                + sys.costs.storage_hit_ms
                + disk
                + if demoted { sys.costs.demote_ms } else { 0.0 }
        }
    }
}

fn access_karma(
    sys: &mut StorageSystem,
    io_idx: usize,
    sc_idx: usize,
    block: BlockAddr,
    weight: u32,
) -> f64 {
    match sys.karma.level_for(io_idx, block.file) {
        KarmaLevel::Io => {
            if sys.io_caches[io_idx].access_weighted(block, weight) {
                return sys.costs.io_hit_ms;
            }
            let disk = disk_read(sys, sc_idx, block);
            sys.io_caches[io_idx].insert_absent(block);
            sys.costs.io_hit_ms + sys.costs.storage_hit_ms + disk
        }
        KarmaLevel::Storage => {
            sys.io_caches[io_idx].access_weighted(block, weight);
            if sys.storage_caches[sc_idx].access(block) {
                return sys.costs.io_hit_ms + sys.costs.storage_hit_ms;
            }
            let disk = disk_read(sys, sc_idx, block);
            sys.storage_caches[sc_idx].insert_absent(block);
            sys.costs.io_hit_ms + sys.costs.storage_hit_ms + disk
        }
        KarmaLevel::Bypass => {
            sys.io_caches[io_idx].access_weighted(block, weight);
            sys.storage_caches[sc_idx].access(block);
            let disk = disk_read(sys, sc_idx, block);
            sys.costs.io_hit_ms + sys.costs.storage_hit_ms + disk
        }
    }
}

fn access_mq(
    sys: &mut StorageSystem,
    io_idx: usize,
    sc_idx: usize,
    block: BlockAddr,
    weight: u32,
) -> f64 {
    if sys.io_caches[io_idx].access_weighted(block, weight) {
        return sys.costs.io_hit_ms;
    }
    if sys.mq_caches[sc_idx].access(block) {
        sys.io_caches[io_idx].insert_absent(block);
        return sys.costs.io_hit_ms + sys.costs.storage_hit_ms;
    }
    let disk = disk_read(sys, sc_idx, block);
    sys.mq_caches[sc_idx].insert(block);
    sys.io_caches[io_idx].insert_absent(block);
    sys.costs.io_hit_ms + sys.costs.storage_hit_ms + disk
}
