//! # flo-sim
//!
//! A trace-driven simulator of the paper's target platform: a cluster whose
//! I/O path runs compute node → I/O node → storage node → disk, with
//! *storage caches* at the I/O and storage layers (Fig. 1 of the paper;
//! caches are allocated only at those two layers in the evaluation, §5.1).
//!
//! The simulator consumes per-thread streams of data-block accesses
//! ([`trace::ThreadTrace`]) and produces per-layer hit/miss statistics plus
//! an execution-time estimate ([`stats::SimReport`]). Three cache-hierarchy
//! management policies are provided:
//!
//! * inclusive LRU (the paper's default, §5.1),
//! * DEMOTE-LRU — exclusive caching via demotions (Wong & Wilkes, §5.4),
//! * KARMA — hint-based exclusive range partitioning (Yadgar et al., §5.4).
//!
//! The disk model charges seek + rotational latency (10k RPM) for
//! non-sequential reads and a pure transfer cost for sequential ones, with
//! PVFS-style round-robin striping of file blocks across storage nodes.
//!
//! Everything is deterministic: same traces + same configuration ⇒ same
//! report. That extends to fault injection: [`fault`] replays a seeded
//! [`FaultPlan`] (node outages with failover re-striping, straggler
//! disks, transient I/O errors absorbed by retry/backoff, cache flushes)
//! as a pure function of `(seed, sequence time)`, so degraded-mode runs
//! are as reproducible as healthy ones — and the no-plan path compiles
//! the fault hooks out entirely.

pub mod block;
pub mod cache;
pub mod disk;
pub mod error;
pub mod fault;
pub mod fxhash;
pub mod policies;
pub mod seedpath;
pub mod sim;
pub mod stackdist;
pub mod stats;
pub mod system;
pub mod topology;
pub mod trace;

pub use block::{BlockAddr, FileId};
pub use cache::LruCore;
pub use disk::DiskModel;
pub use error::SimError;
pub use fault::{FaultHook, FaultPlan, FaultState, NoFaults, RetryModel};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHasher};
pub use policies::karma::KarmaHints;
pub use policies::PolicyKind;
pub use seedpath::simulate_seed;
pub use sim::{
    simulate, simulate_faulted, simulate_faulted_observed, simulate_observed, RunConfig,
};
pub use stackdist::{
    simulate_sweep, simulate_sweep_faulted, simulate_sweep_observed, MultiCapacityStack, SweepPoint,
};
pub use stats::{LayerStats, SimReport};
pub use system::StorageSystem;
pub use topology::Topology;
pub use trace::{JitterInterleaver, ThreadTrace, TraceEntry};
