//! Data-block addressing.
//!
//! The unit of cache management is the *data block*, whose size equals the
//! stripe size (paper §5.1, Table 1: both 128 KB). A block is identified by
//! the file it belongs to (one file per disk-resident array) and its block
//! index within that file.

/// Identifier of a file (= one disk-resident array).
pub type FileId = u32;

/// Address of one data block: `(file, block index within file)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr {
    /// Owning file.
    pub file: FileId,
    /// Block index within the file.
    pub index: u64,
}

impl BlockAddr {
    /// Construct a block address.
    pub fn new(file: FileId, index: u64) -> BlockAddr {
        BlockAddr { file, index }
    }

    /// The block containing byte/element `offset` of `file`, for a block
    /// size of `block_size` elements.
    pub fn containing(file: FileId, offset: u64, block_size: u64) -> BlockAddr {
        assert!(block_size > 0, "BlockAddr: zero block size");
        BlockAddr {
            file,
            index: offset / block_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containing_block() {
        assert_eq!(BlockAddr::containing(3, 0, 64), BlockAddr::new(3, 0));
        assert_eq!(BlockAddr::containing(3, 63, 64), BlockAddr::new(3, 0));
        assert_eq!(BlockAddr::containing(3, 64, 64), BlockAddr::new(3, 1));
        assert_eq!(BlockAddr::containing(3, 1000, 64), BlockAddr::new(3, 15));
    }

    #[test]
    fn ordering_is_file_major() {
        assert!(BlockAddr::new(0, 99) < BlockAddr::new(1, 0));
        assert!(BlockAddr::new(1, 0) < BlockAddr::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "zero block size")]
    fn zero_block_size_rejected() {
        BlockAddr::containing(0, 0, 0);
    }
}
