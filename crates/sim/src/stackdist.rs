//! One-pass multi-capacity sweep simulation for inclusive-LRU runs.
//!
//! A capacity-sensitivity sweep (Fig. 7(c)) re-drives the *same*
//! interleaved trace through [`crate::simulate`] once per capacity point,
//! even though every point shares the trace, the routing, and the jittered
//! interleaving — only the cache geometries differ. This module evaluates
//! all points in a single pass:
//!
//! * **I/O layer — Mattson stack classification.** Under inclusive LRU the
//!   I/O caches see the full routed request stream regardless of capacity,
//!   and every access (re-)installs its block at MRU. Each per-set LRU
//!   cache therefore holds exactly the `ways` most recently accessed
//!   distinct blocks of its set, so an access hits a `(sets, ways)`
//!   geometry iff fewer than `ways` distinct blocks of the same set were
//!   touched since that block's previous access. [`MultiCapacityStack`]
//!   answers that question for *all* swept geometries at once from one
//!   recency structure (see the struct docs for the exactness argument).
//!
//! * **Storage layer + disk — per-point replay.** The storage caches see
//!   only the I/O-*miss* stream, which genuinely differs per capacity
//!   point, and an I/O-layer hit does not refresh storage recency — so
//!   storage hits are *not* a function of any capacity-independent reuse
//!   distance (DESIGN.md §2.6 gives a two-line counterexample). Exactness
//!   requires driving each point's storage caches and disks for real;
//!   the sweep still wins because those only see the miss stream, in
//!   stream order — which also keeps sequential-read detection exact.
//!
//! The result is bit-identical to running [`crate::simulate`] once per
//! point with [`crate::PolicyKind::LruInclusive`]: same layer counters,
//! same disk reads, same per-thread latencies, same execution time.

use crate::cache::{set_geometry, set_hash, CacheStats, FastMod};
use crate::disk::{DiskModel, DiskState};
use crate::error::SimError;
use crate::fault::{FaultPlan, FaultState};
use crate::policies::PolicyKind;
use crate::sim::{simulate_observed, RunConfig, INTERLEAVE_SEED};
use crate::stats::{LayerStats, SimReport};
use crate::system::{CostModel, StorageSystem};
use crate::topology::Topology;
use crate::trace::{JitterInterleaver, ThreadTrace};
use flo_obs::{Layer, NullObserver, Observer};

/// One swept configuration: per-node cache capacities in blocks. All other
/// topology parameters (node counts, block size, associativity) are shared
/// across a sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepPoint {
    /// Capacity of each I/O-node cache, in blocks.
    pub io_cache_blocks: usize,
    /// Capacity of each storage-node cache, in blocks.
    pub storage_cache_blocks: usize,
}

impl SweepPoint {
    /// The capacities of `topo` as a sweep point.
    pub fn of(topo: &Topology) -> SweepPoint {
        SweepPoint {
            io_cache_blocks: topo.io_cache_blocks,
            storage_cache_blocks: topo.storage_cache_blocks,
        }
    }
}

/// Hit masks are `u64` bitsets, one bit per swept geometry.
pub const MAX_SWEEP_POINTS: usize = 64;

/// Envelope bound on the residue-class count `L` (the set-count lcm).
const MAX_CLASSES: u64 = 4096;

/// Envelope bound on the per-residue walk length (classes visited per
/// classified access) times the class count — keeps table build and
/// per-access cost bounded for adversarial geometry mixes.
const MAX_TABLE: usize = 1 << 20;

/// Per-class recency windows mirror the small-mode linear scans of
/// [`crate::LruCore`]; geometries wider than this fall back.
const MAX_WAYS: usize = 128;

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Sequence-counter integer of a [`StackEngine`]: `u64` in general, `u32`
/// when the caller can bound the access count below `u32::MAX` (true of
/// every real trace), halving the recency slab the classification walk
/// streams through — the walk is memory-bound once several per-I/O-node
/// stacks contend for L1.
pub trait SeqTime: Copy + Ord + std::fmt::Debug {
    /// The "never accessed" time carried by empty slots.
    const ZERO: Self;
    /// The successor timestamp (callers guarantee no overflow).
    fn next(self) -> Self;
}

impl SeqTime for u32 {
    const ZERO: u32 = 0;
    #[inline]
    fn next(self) -> u32 {
        self + 1
    }
}

impl SeqTime for u64 {
    const ZERO: u64 = 0;
    #[inline]
    fn next(self) -> u64 {
        self + 1
    }
}

/// Branchless younger-than count over one 8-entry seq chunk.
#[inline]
fn count_newer8<S: SeqTime>(seqs: &[S], prev: S) -> u32 {
    debug_assert_eq!(seqs.len(), 8);
    (seqs[0] > prev) as u32
        + (seqs[1] > prev) as u32
        + (seqs[2] > prev) as u32
        + (seqs[3] > prev) as u32
        + (seqs[4] > prev) as u32
        + (seqs[5] > prev) as u32
        + (seqs[6] > prev) as u32
        + (seqs[7] > prev) as u32
}

/// How per-class counts combine into per-geometry verdicts.
#[derive(Clone, Debug)]
enum Plan {
    /// Set counts (sorted ascending) divide each other — true of every
    /// paper sweep, where capacities scale by powers of two at fixed
    /// associativity. Relevant classes nest: each class belongs to every
    /// geometry at least as coarse as its *finest* level, so walking
    /// classes finest-level-first yields each geometry's count as a
    /// running total — and since coarser counts only grow, the walk stops
    /// as soon as the total saturates every remaining geometry's ways.
    Nested {
        /// Per residue `r`, `row_len` classes congruent to `r` under the
        /// coarsest geometry, sorted by descending finest level.
        rows: Vec<u32>,
        row_len: usize,
        /// Classes per level, finest (fewest classes) first; identical for
        /// every residue.
        level_sizes: Vec<u32>,
        /// Geometry order by *descending* set count (finest first):
        /// `(orig_bit, ways)`, matching `level_sizes`.
        sorted: Vec<(u32, u32)>,
        /// `stop[i]`: running total that saturates geometry `i` and every
        /// coarser one (max ways over `sorted[i..]`).
        stop: Vec<u32>,
    },
    /// Arbitrary set counts: per residue, a CSR list of relevant classes
    /// with the bitmask of geometries each contributes to.
    Generic {
        off: Vec<u32>,
        items: Vec<(u32, u64)>,
        ways: Vec<u32>,
        /// Scratch: per-geometry younger-than counts.
        counts: Vec<u32>,
    },
}

/// The default stack engine: `u64` timestamps, valid for any trace
/// length. [`simulate_sweep`] switches to the `u32` instantiation when
/// the trace provably fits.
pub type MultiCapacityStack = StackEngine<u64>;

/// All-geometry LRU stack for one cache: classifies each access as
/// hit/miss for every swept `(sets, ways)` geometry in one walk.
///
/// Blocks are grouped into residue classes of their set hash modulo
/// `L = lcm(sets_0, …, sets_{K-1})`; the set a block maps to under
/// geometry `k` is its class modulo `sets_k`, so the distinct-blocks-since
/// count for geometry `k` is the sum, over classes congruent to the
/// accessed block's class mod `sets_k`, of entries younger than the
/// block's previous access. Each class keeps a window of its
/// `stride ≥ max_k(ways_k)` most recently accessed distinct blocks in
/// *unordered* slots (recency lives entirely in the seq values, so a
/// re-access is one seq store and an insertion overwrites the min-seq
/// slot — no ordered-list maintenance; empty slots carry seq 0 so the
/// count scan is branchless over the full window).
///
/// **Exactness.** Under always-insert LRU, geometry `k` hits iff fewer
/// than `ways_k` distinct same-set blocks were accessed strictly after
/// the block's previous access. The bounded window cannot change any
/// verdict: if a class dropped an entry younger than the probed block's
/// previous access, it necessarily retains `stride ≥ ways_k` entries
/// younger still, so every affected count is already saturated past
/// `ways_k` and the verdict is a miss either way. A block absent from its
/// class (cold, or itself dropped) is a miss for every geometry by the
/// same argument.
#[derive(Clone, Debug)]
pub struct StackEngine<S: SeqTime = u64> {
    class_mod: FastMod,
    /// Class id → slab slot. Classes are laid out grouped by residue
    /// modulo the coarsest set count, so the classes one access walks
    /// (always a subset of one such group) sit in one contiguous slab
    /// region.
    slot: Vec<u32>,
    /// Recency-window length per class: `max ways`, rounded up to a
    /// multiple of 8 for the chunked branchless count.
    stride: usize,
    /// `L × stride` access times, unordered per class; 0 = empty slot.
    seqs: Vec<S>,
    /// `L × stride` block indices (entry identity, part 1).
    indices: Vec<u64>,
    /// `L × stride` block files (entry identity, part 2).
    files: Vec<u32>,
    plan: Plan,
    /// Virtual time; pre-incremented, so 0 never labels a live entry.
    seq: S,
}

impl<S: SeqTime> StackEngine<S> {
    /// Build a stack for `geometries` (`(num_sets, ways)` pairs, as a
    /// [`crate::cache::SetAssocCache`] of each swept capacity would be built). Returns
    /// `None` when the combination is outside the engine's envelope
    /// (too many points, class table too large, or sets too wide).
    pub fn new(geometries: &[(usize, usize)]) -> Option<StackEngine<S>> {
        if geometries.is_empty() || geometries.len() > MAX_SWEEP_POINTS {
            return None;
        }
        let mut l: u64 = 1;
        for &(sets, ways) in geometries {
            if sets == 0 || ways == 0 || ways > MAX_WAYS {
                return None;
            }
            l = lcm(l, sets as u64);
            if l > MAX_CLASSES {
                return None;
            }
        }
        let l = l as usize;
        let stride = geometries
            .iter()
            .map(|&(_, w)| w)
            .max()
            .unwrap()
            .next_multiple_of(8);

        // Geometries sorted by ascending set count; when each set count
        // divides the next the relevant classes nest and the fast plan
        // applies.
        let mut order: Vec<usize> = (0..geometries.len()).collect();
        order.sort_by_key(|&k| geometries[k].0);
        let nested = order
            .windows(2)
            .all(|w| geometries[w[1]].0.is_multiple_of(geometries[w[0]].0));

        let s_min = geometries[order[0]].0;
        let row_len = l / s_min;
        if l * row_len.max(1) > MAX_TABLE {
            return None;
        }
        // Slab slots grouped by residue modulo the coarsest set count.
        let mut by_group: Vec<usize> = (0..l).collect();
        by_group.sort_by_key(|&c| (c % s_min, c));
        let mut slot = vec![0u32; l];
        for (s, &c) in by_group.iter().enumerate() {
            slot[c] = s as u32;
        }
        let plan = if nested {
            // Geometries finest (largest set count) first.
            let fine: Vec<usize> = order.iter().rev().copied().collect();
            let mut rows = Vec::with_capacity(l * row_len);
            let mut level_sizes = vec![0u32; fine.len()];
            for r in 0..l {
                // Classes grouped by finest level, finest first.
                let mut row: Vec<(u32, u32)> = Vec::with_capacity(row_len);
                let mut c = r % s_min;
                while c < l {
                    // Finest geometry whose set this class shares with
                    // residue r (index into `fine`).
                    let level = fine
                        .iter()
                        .position(|&k| c % geometries[k].0 == r % geometries[k].0)
                        .unwrap() as u32;
                    row.push((level, c as u32));
                    c += s_min;
                }
                row.sort_unstable();
                if r == 0 {
                    for &(lev, _) in &row {
                        level_sizes[lev as usize] += 1;
                    }
                }
                rows.extend(row.iter().map(|&(_, c)| slot[c as usize]));
            }
            let sorted: Vec<(u32, u32)> = fine
                .iter()
                .map(|&k| (k as u32, geometries[k].1 as u32))
                .collect();
            let mut stop = vec![0u32; sorted.len()];
            let mut m = 0u32;
            for i in (0..sorted.len()).rev() {
                stop[i] = m;
                m = m.max(sorted[i].1);
            }
            Plan::Nested {
                rows,
                row_len,
                level_sizes,
                sorted,
                stop,
            }
        } else {
            let mut off = Vec::with_capacity(l + 1);
            let mut items = Vec::new();
            for r in 0..l {
                off.push(items.len() as u32);
                for (c, &s) in slot.iter().enumerate() {
                    let mut mask = 0u64;
                    for (k, &(sets, _)) in geometries.iter().enumerate() {
                        if c % sets == r % sets {
                            mask |= 1 << k;
                        }
                    }
                    if mask != 0 {
                        items.push((s, mask));
                    }
                }
            }
            off.push(items.len() as u32);
            Plan::Generic {
                off,
                items,
                ways: geometries.iter().map(|&(_, w)| w as u32).collect(),
                counts: vec![0; geometries.len()],
            }
        };
        Some(StackEngine {
            class_mod: FastMod::new(l as u64),
            slot,
            stride,
            seqs: vec![S::ZERO; l * stride],
            indices: vec![u64::MAX; l * stride],
            files: vec![u32::MAX; l * stride],
            plan,
            seq: S::ZERO,
        })
    }

    /// Classify one access: bit `k` of the result is set iff a
    /// `geometries[k]` cache serving this stream hits. Promotes the block
    /// to MRU of its class.
    pub fn access(&mut self, block: crate::BlockAddr) -> u64 {
        self.access_observed(block, &mut NullObserver)
    }

    /// [`access`](Self::access), reporting the access's stack distance to
    /// `obs`: `None` for a cold access, otherwise the distinct-same-set-
    /// blocks-since count the classification walk accumulated. The walk
    /// stops counting once every geometry's verdict is decided, so the
    /// distance saturates at the swept geometries' maximum ways — exact
    /// below that point, a lower bound above it (see
    /// [`flo_obs::Observer::stack_distance`]).
    pub fn access_observed<O: Observer>(&mut self, block: crate::BlockAddr, obs: &mut O) -> u64 {
        let r = self.class_mod.rem(set_hash(block)) as usize;
        let base = self.slot[r] as usize * self.stride;
        self.seq = self.seq.next();
        // The block's previous access, if still inside its class window.
        // Window entries are distinct blocks, so at most one slot matches;
        // the branchless position sum vectorizes where an early-exit scan
        // cannot.
        let (prev_seq, pos) = {
            let ind = &self.indices[base..base + self.stride];
            let fil = &self.files[base..base + self.stride];
            let mut hit = 0usize;
            for i in 0..self.stride {
                hit += (i + 1) * (((ind[i] == block.index) & (fil[i] == block.file)) as usize);
            }
            if hit != 0 {
                (self.seqs[base + hit - 1], hit - 1)
            } else {
                (S::ZERO, usize::MAX)
            }
        };
        let (mask, dist) = if prev_seq == S::ZERO {
            (0, None)
        } else {
            match &mut self.plan {
                Plan::Nested {
                    rows,
                    row_len,
                    level_sizes,
                    sorted,
                    stop,
                } => {
                    let row = &rows[r * *row_len..(r + 1) * *row_len];
                    // The finest level is the block's own class (nested ⇒
                    // the lcm equals the largest set count), already hot
                    // from the find scan.
                    debug_assert_eq!(level_sizes[0], 1);
                    debug_assert_eq!(row[0] as usize * self.stride, base);
                    let mut mask = 0u64;
                    let mut acc = 0u32;
                    for chunk in self.seqs[base..base + self.stride].chunks_exact(8) {
                        acc += count_newer8(chunk, prev_seq);
                    }
                    let mut at = 1usize;
                    for (i, &(orig, ways)) in sorted.iter().enumerate() {
                        if i > 0 {
                            // Count every class of this level
                            // unconditionally: a stale class contributes 0
                            // anyway, and the vectorized count is cheaper
                            // than a data-dependent (unpredictable) skip.
                            for &c in &row[at..at + level_sizes[i] as usize] {
                                let cb = c as usize * self.stride;
                                for chunk in self.seqs[cb..cb + self.stride].chunks_exact(8) {
                                    acc += count_newer8(chunk, prev_seq);
                                }
                            }
                            at += level_sizes[i] as usize;
                        }
                        // `acc` is now exactly this geometry's
                        // distinct-blocks-since count (its relevant classes
                        // are precisely those of level ≤ i in `fine` order).
                        if acc < ways {
                            mask |= 1 << orig;
                        } else if acc >= stop[i] {
                            // Counts only grow toward coarser geometries:
                            // everything remaining is already a miss.
                            break;
                        }
                    }
                    (mask, Some(u64::from(acc)))
                }
                Plan::Generic {
                    off,
                    items,
                    ways,
                    counts,
                } => {
                    for c in counts.iter_mut() {
                        *c = 0;
                    }
                    for &(ci, cmask) in &items[off[r] as usize..off[r + 1] as usize] {
                        let cb = ci as usize * self.stride;
                        let mut cnt = 0u32;
                        for chunk in self.seqs[cb..cb + self.stride].chunks_exact(8) {
                            cnt += count_newer8(chunk, prev_seq);
                        }
                        if cnt > 0 {
                            let mut m = cmask;
                            while m != 0 {
                                let k = m.trailing_zeros() as usize;
                                counts[k] += cnt;
                                m &= m - 1;
                            }
                        }
                    }
                    let mut mask = 0u64;
                    for (k, &w) in ways.iter().enumerate() {
                        if counts[k] < w {
                            mask |= 1 << k;
                        }
                    }
                    // Geometries partition the classes differently, so
                    // "the" distance is per-geometry here; report the
                    // largest (the count over the most classes).
                    let dist = if O::ENABLED {
                        u64::from(counts.iter().copied().max().unwrap_or(0))
                    } else {
                        0
                    };
                    (mask, Some(dist))
                }
            }
        };
        if O::ENABLED {
            obs.stack_distance(dist);
        }
        // Refresh in place on a re-access; otherwise overwrite the
        // window's oldest entry (min seq; empty slots carry 0 and fill
        // first).
        let at = if pos != usize::MAX {
            base + pos
        } else {
            let mut victim = base;
            for i in base + 1..base + self.stride {
                if self.seqs[i] < self.seqs[victim] {
                    victim = i;
                }
            }
            self.indices[victim] = block.index;
            self.files[victim] = block.file;
            victim
        };
        self.seqs[at] = self.seq;
        mask
    }
}

/// A set-associative always-insert LRU cache specialized for the sweep's
/// storage layer: each set is a flat MRU-first array, so a hit is a short
/// scan plus an in-place rotate and a fill evicts the last slot — the
/// same set structure, hash, and eviction order as a
/// [`crate::cache::SetAssocCache`] (whose general [`crate::LruCore`]
/// carries linked-list plumbing for demote/remove operations the
/// inclusive sweep never performs), hence bit-identical hits, evictions,
/// and counters.
struct FlatSetLru {
    set_mod: FastMod,
    ways: usize,
    /// `num_sets × ways` entries, MRU-first per set; `file == u32::MAX`
    /// marks an empty slot (never a real file at realistic array counts).
    indices: Vec<u64>,
    files: Vec<u32>,
    stats: CacheStats,
}

impl FlatSetLru {
    fn new(capacity: usize, ways: usize) -> FlatSetLru {
        let (num_sets, ways) = set_geometry(capacity, ways);
        FlatSetLru {
            set_mod: FastMod::new(num_sets as u64),
            ways,
            indices: vec![u64::MAX; num_sets * ways],
            files: vec![u32::MAX; num_sets * ways],
            stats: CacheStats::default(),
        }
    }

    /// Unweighted lookup: counts the access, promotes on hit.
    #[inline]
    fn access(&mut self, block: crate::BlockAddr) -> bool {
        let base = self.set_mod.rem(set_hash(block)) as usize * self.ways;
        self.stats.accesses += 1;
        for i in 0..self.ways {
            if self.indices[base + i] == block.index && self.files[base + i] == block.file {
                self.stats.hits += 1;
                self.indices.copy_within(base..base + i, base + 1);
                self.files.copy_within(base..base + i, base + 1);
                self.indices[base] = block.index;
                self.files[base] = block.file;
                return true;
            }
        }
        false
    }

    /// Insert a block that just missed (the set's LRU slot is evicted).
    #[inline]
    fn insert_absent(&mut self, block: crate::BlockAddr) {
        let base = self.set_mod.rem(set_hash(block)) as usize * self.ways;
        self.indices
            .copy_within(base..base + self.ways - 1, base + 1);
        self.files.copy_within(base..base + self.ways - 1, base + 1);
        self.indices[base] = block.index;
        self.files[base] = block.file;
    }

    /// Whether inserting `block` now would push a resident block out of
    /// its set (observer bookkeeping only).
    #[inline]
    fn insert_would_evict(&self, block: crate::BlockAddr) -> bool {
        let base = self.set_mod.rem(set_hash(block)) as usize * self.ways;
        self.files[base + self.ways - 1] != u32::MAX
    }

    /// Resident blocks per set (observer bookkeeping only).
    fn set_occupancies(&self) -> Vec<u32> {
        self.files
            .chunks_exact(self.ways)
            .map(|set| set.iter().filter(|&&f| f != u32::MAX).count() as u32)
            .collect()
    }
}

/// Per-point live state: storage caches, disks, and accumulators. The I/O
/// layer is classified by the shared [`MultiCapacityStack`]s; everything
/// downstream of an I/O miss is simulated for real per point.
struct PointState {
    /// Requests that missed this point's I/O layer (each miss forfeits
    /// exactly one weighted hit; see [`crate::LruCore::access_weighted`]).
    io_miss_requests: u64,
    storage: Vec<FlatSetLru>,
    disks: Vec<DiskState>,
    latency: Vec<f64>,
}

/// Simulate an inclusive-LRU run of `traces` on `base` at every capacity
/// in `points`, in one pass over the interleaved stream.
///
/// Returns one [`SimReport`] per point, bit-identical to calling
/// [`simulate`](crate::simulate) on a fresh [`StorageSystem`] with the
/// corresponding
/// capacities (`base` with `points[i]`'s capacities substituted). Sweeps
/// outside the stack engine's envelope (see [`MultiCapacityStack::new`])
/// transparently fall back to exactly that per-point path.
pub fn simulate_sweep(
    base: &Topology,
    points: &[SweepPoint],
    traces: &[ThreadTrace],
    cfg: &RunConfig,
) -> Result<Vec<SimReport>, SimError> {
    let mut nulls = vec![NullObserver; points.len()];
    simulate_sweep_observed(base, points, traces, cfg, &mut NullObserver, &mut nulls)
}

/// Shared input validation of the sweep entry points.
fn validate_sweep(base: &Topology, points: &[SweepPoint]) -> Result<(), SimError> {
    base.validate()?;
    if points.is_empty() {
        return Err(SimError::InvalidSweep("no capacity points".to_string()));
    }
    for (k, p) in points.iter().enumerate() {
        if p.io_cache_blocks == 0 || p.storage_cache_blocks == 0 {
            return Err(SimError::InvalidSweep(format!(
                "point {k} has a zero cache capacity ({} io, {} storage blocks)",
                p.io_cache_blocks, p.storage_cache_blocks
            )));
        }
    }
    Ok(())
}

/// [`simulate_sweep`] under a fault plan: every capacity point replays
/// the *same* seeded fault schedule from a fresh [`FaultState`] (fault
/// decisions are pure in `(seed, sequence time)`, and every point sees
/// the same interleaved stream), so the points stay comparable — each
/// report is bit-identical to [`crate::simulate_faulted`] on a fresh
/// system at that capacity. Faulted sweeps always take the per-point
/// path: fault-injected flushes and reroutes break the stack-inclusion
/// property the one-pass engine relies on.
pub fn simulate_sweep_faulted(
    base: &Topology,
    points: &[SweepPoint],
    traces: &[ThreadTrace],
    cfg: &RunConfig,
    plan: &FaultPlan,
) -> Result<Vec<SimReport>, SimError> {
    validate_sweep(base, points)?;
    plan.validate()?;
    points
        .iter()
        .map(|p| {
            let mut topo = base.clone();
            topo.io_cache_blocks = p.io_cache_blocks;
            topo.storage_cache_blocks = p.storage_cache_blocks;
            let mut system = StorageSystem::new(topo, PolicyKind::LruInclusive)?;
            let mut faults = FaultState::new(*plan)?;
            Ok(crate::sim::simulate_faulted(
                &mut system,
                traces,
                cfg,
                &mut faults,
            ))
        })
        .collect()
}

/// [`simulate_sweep`], reporting telemetry through observers. The shared
/// I/O-layer classification reports each access's stack distance to
/// `stream_obs` (the distance profile is a property of the routed stream,
/// not of any capacity point); `point_obs[k]` receives point `k`'s
/// per-event telemetry — I/O and storage cache lookups, storage
/// evictions, disk reads, and an end-of-run storage occupancy snapshot.
/// (The shared classification stack is not a cache, so sweep runs carry
/// no I/O-layer eviction or occupancy events.) Sweeps outside the stack
/// engine's envelope fall back to observed per-point simulation, where
/// `stream_obs` receives nothing.
///
/// Reports stay bit-identical to [`simulate_sweep`] for every observer.
pub fn simulate_sweep_observed<O: Observer>(
    base: &Topology,
    points: &[SweepPoint],
    traces: &[ThreadTrace],
    cfg: &RunConfig,
    stream_obs: &mut O,
    point_obs: &mut [O],
) -> Result<Vec<SimReport>, SimError> {
    validate_sweep(base, points)?;
    if point_obs.len() != points.len() {
        return Err(SimError::InvalidSweep(format!(
            "one observer per point required ({} observers for {} points)",
            point_obs.len(),
            points.len()
        )));
    }
    let geometries: Vec<(usize, usize)> = points
        .iter()
        .map(|p| set_geometry(p.io_cache_blocks, base.cache_ways))
        .collect();
    // u32 timestamps halve the recency slab; every real trace is far
    // below u32::MAX accesses, but check rather than assume.
    let total: u64 = traces.iter().map(|t| t.entries.len() as u64).sum();
    if total < u32::MAX as u64 {
        if let Some(proto) = StackEngine::<u32>::new(&geometries) {
            return Ok(sweep_with(
                proto, base, points, traces, cfg, stream_obs, point_obs,
            ));
        }
    } else if let Some(proto) = StackEngine::<u64>::new(&geometries) {
        return Ok(sweep_with(
            proto, base, points, traces, cfg, stream_obs, point_obs,
        ));
    }
    points
        .iter()
        .zip(point_obs)
        .map(|(p, o)| simulate_point_observed(base, *p, traces, cfg, o))
        .collect()
}

/// The one-pass driver, generic over the stack engine's timestamp width.
fn sweep_with<S: SeqTime, O: Observer>(
    proto: StackEngine<S>,
    base: &Topology,
    points: &[SweepPoint],
    traces: &[ThreadTrace],
    cfg: &RunConfig,
    stream_obs: &mut O,
    point_obs: &mut [O],
) -> Vec<SimReport> {
    let costs = CostModel::for_block_elems(base.block_elems);
    let disk_model = DiskModel::for_block_elems(base.block_elems);
    let mut stacks: Vec<StackEngine<S>> = vec![proto; base.io_nodes];
    let mut pts: Vec<PointState> = points
        .iter()
        .map(|p| PointState {
            io_miss_requests: 0,
            storage: (0..base.storage_nodes)
                .map(|_| FlatSetLru::new(p.storage_cache_blocks, base.cache_ways))
                .collect(),
            disks: (0..base.storage_nodes)
                .map(|_| DiskState::default())
                .collect(),
            latency: vec![0.0f64; traces.len()],
        })
        .collect();
    let mut total_requests = 0u64;
    let mut total_weight = 0u64;
    for (t, entry) in JitterInterleaver::new(traces, INTERLEAVE_SEED) {
        let io_idx = base.io_node_of_compute(traces[t].compute_node);
        let sc_idx = base.storage_node_of_block(entry.block);
        let mask = stacks[io_idx].access_observed(entry.block, stream_obs);
        total_requests += 1;
        total_weight += entry.count as u64;
        for (k, st) in pts.iter_mut().enumerate() {
            if mask >> k & 1 == 1 {
                point_obs[k].cache_access(Layer::Io, io_idx, true, entry.count);
                st.latency[t] += costs.io_hit_ms;
            } else {
                point_obs[k].cache_access(Layer::Io, io_idx, false, entry.count);
                st.io_miss_requests += 1;
                let hit = st.storage[sc_idx].access(entry.block);
                point_obs[k].cache_access(Layer::Storage, sc_idx, hit, 1);
                let ms = if hit {
                    costs.io_hit_ms + costs.storage_hit_ms
                } else {
                    let (disk, sequential) = st.disks[sc_idx].read_classified(
                        entry.block,
                        &disk_model,
                        base.storage_nodes,
                    );
                    point_obs[k].disk_read(sc_idx, sequential, disk);
                    if O::ENABLED && st.storage[sc_idx].insert_would_evict(entry.block) {
                        point_obs[k].eviction(Layer::Storage, sc_idx);
                    }
                    st.storage[sc_idx].insert_absent(entry.block);
                    costs.io_hit_ms + costs.storage_hit_ms + disk
                };
                st.latency[t] += ms;
            }
        }
    }
    if O::ENABLED {
        for (k, st) in pts.iter().enumerate() {
            for (n, c) in st.storage.iter().enumerate() {
                point_obs[k].occupancy(Layer::Storage, n, &c.set_occupancies());
            }
        }
    }
    pts.into_iter()
        .map(|st| {
            let mut storage = CacheStats::default();
            for c in &st.storage {
                storage.merge(&c.stats);
            }
            let execution_time_ms = st
                .latency
                .iter()
                .map(|l| l + cfg.compute_ms_per_thread)
                .fold(0.0f64, f64::max);
            SimReport {
                layers: LayerStats {
                    io: CacheStats {
                        accesses: total_weight,
                        hits: total_weight - st.io_miss_requests,
                    },
                    storage,
                },
                disk_reads: st.disks.iter().map(|d| d.reads).sum(),
                disk_sequential_reads: st.disks.iter().map(|d| d.sequential_reads).sum(),
                demotions: 0,
                thread_latency_ms: st.latency,
                compute_ms_per_thread: cfg.compute_ms_per_thread,
                execution_time_ms,
                total_requests,
            }
        })
        .collect()
}

/// The per-point reference path: a fresh inclusive-LRU system at one
/// capacity point, driven by [`crate::simulate`].
#[cfg(test)]
fn simulate_point(
    base: &Topology,
    point: SweepPoint,
    traces: &[ThreadTrace],
    cfg: &RunConfig,
) -> SimReport {
    simulate_point_observed(base, point, traces, cfg, &mut NullObserver).unwrap()
}

/// Observed per-point path (the fallback of [`simulate_sweep_observed`]).
fn simulate_point_observed<O: Observer>(
    base: &Topology,
    point: SweepPoint,
    traces: &[ThreadTrace],
    cfg: &RunConfig,
    obs: &mut O,
) -> Result<SimReport, SimError> {
    let mut topo = base.clone();
    topo.io_cache_blocks = point.io_cache_blocks;
    topo.storage_cache_blocks = point.storage_cache_blocks;
    let mut system = StorageSystem::new(topo, PolicyKind::LruInclusive)?;
    Ok(simulate_observed(&mut system, traces, cfg, obs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockAddr;

    fn trace(thread: usize, node: usize, blocks: &[(u32, u64)]) -> ThreadTrace {
        let mut t = ThreadTrace::new(thread, node);
        for &(f, i) in blocks {
            t.push(BlockAddr::new(f, i));
        }
        t
    }

    /// A single fully-associative geometry must reproduce plain LRU.
    #[test]
    fn single_geometry_matches_lru() {
        let mut stack = MultiCapacityStack::new(&[(1, 3)]).unwrap();
        let mut lru = crate::LruCore::new(3);
        let stream = [1u64, 2, 3, 1, 4, 5, 2, 1, 3, 3, 6, 1, 2, 7, 1, 4, 4, 2];
        for &i in &stream {
            let b = BlockAddr::new(0, i);
            let hit = lru.access(b);
            lru.insert(b);
            assert_eq!(stack.access(b) == 1, hit, "block {i}");
        }
    }

    /// Nested geometries obey stack inclusion: a hit at a smaller
    /// capacity implies a hit at every larger one.
    #[test]
    fn hit_masks_are_monotone_for_nested_sets() {
        // 1×2, 1×4, 1×8: fully associative, growing ways.
        let mut stack = MultiCapacityStack::new(&[(1, 2), (1, 4), (1, 8)]).unwrap();
        let mut x: u64 = 0x1234_5678;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let mask = stack.access(BlockAddr::new(0, x % 12));
            // A set bit k requires all higher bits set, so the unset bits
            // must form a low prefix.
            let unset = !mask & 0b111;
            assert_eq!(unset & (unset + 1), 0, "non-monotone mask {mask:b}");
        }
    }

    /// The envelope guards refuse degenerate inputs instead of panicking.
    #[test]
    fn envelope_guards() {
        assert!(MultiCapacityStack::new(&[]).is_none());
        assert!(MultiCapacityStack::new(&[(0, 4)]).is_none());
        assert!(MultiCapacityStack::new(&[(4, 0)]).is_none());
        assert!(MultiCapacityStack::new(&[(4, MAX_WAYS + 1)]).is_none());
        // Coprime huge set counts blow the class bound.
        assert!(MultiCapacityStack::new(&[(2999, 8), (3001, 8)]).is_none());
        assert!(MultiCapacityStack::new(&[(12, 8), (48, 8)]).is_some());
        // Non-nested but small set counts take the generic plan.
        assert!(MultiCapacityStack::new(&[(2, 4), (3, 4)]).is_some());
    }

    /// A tiny two-point sweep matches per-point simulation exactly.
    #[test]
    fn tiny_sweep_matches_per_point() {
        let topo = Topology::tiny();
        let traces = vec![
            trace(0, 0, &[(0, 1), (0, 2), (0, 1), (1, 3), (0, 9), (0, 1)]),
            trace(1, 2, &[(0, 2), (1, 3), (1, 3), (0, 7), (0, 2), (2, 0)]),
            trace(2, 3, &[(2, 5), (2, 6), (2, 5), (2, 6), (0, 1), (0, 2)]),
        ];
        let cfg = RunConfig {
            compute_ms_per_thread: 1.5,
        };
        let points = [
            SweepPoint {
                io_cache_blocks: 2,
                storage_cache_blocks: 4,
            },
            SweepPoint {
                io_cache_blocks: 8,
                storage_cache_blocks: 16,
            },
            SweepPoint {
                io_cache_blocks: 3,
                storage_cache_blocks: 5,
            },
        ];
        let swept = simulate_sweep(&topo, &points, &traces, &cfg).unwrap();
        for (p, got) in points.iter().zip(&swept) {
            let want = simulate_point(&topo, *p, &traces, &cfg);
            assert_eq!(got.layers.io, want.layers.io, "{p:?}");
            assert_eq!(got.layers.storage, want.layers.storage, "{p:?}");
            assert_eq!(got.disk_reads, want.disk_reads, "{p:?}");
            assert_eq!(
                got.disk_sequential_reads, want.disk_sequential_reads,
                "{p:?}"
            );
            assert_eq!(got.thread_latency_ms, want.thread_latency_ms, "{p:?}");
            assert_eq!(got.execution_time_ms, want.execution_time_ms, "{p:?}");
            assert_eq!(got.total_requests, want.total_requests, "{p:?}");
        }
    }

    /// Random small sweeps (mixed nested/generic geometries) match the
    /// per-point path exactly.
    #[test]
    fn random_sweeps_match_per_point() {
        let mut x: u64 = 0xBEEF_CAFE;
        let mut rnd = move |n: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % n
        };
        for case in 0..25 {
            let mut topo = Topology::tiny();
            topo.cache_ways = 1 + rnd(8) as usize;
            let n_threads = 1 + rnd(3) as usize;
            let traces: Vec<ThreadTrace> = (0..n_threads)
                .map(|t| {
                    let mut tr = ThreadTrace::new(t, rnd(topo.compute_nodes as u64) as usize);
                    for _ in 0..(20 + rnd(100)) {
                        tr.push(BlockAddr::new(rnd(3) as u32, rnd(30)));
                    }
                    tr
                })
                .collect();
            let n_points = 1 + rnd(4) as usize;
            let points: Vec<SweepPoint> = (0..n_points)
                .map(|_| SweepPoint {
                    io_cache_blocks: 1 + rnd(24) as usize,
                    storage_cache_blocks: 1 + rnd(48) as usize,
                })
                .collect();
            let cfg = RunConfig::default();
            let swept = simulate_sweep(&topo, &points, &traces, &cfg).unwrap();
            for (p, got) in points.iter().zip(&swept) {
                let want = simulate_point(&topo, *p, &traces, &cfg);
                assert_eq!(got.layers.io, want.layers.io, "case {case} {p:?}");
                assert_eq!(got.layers.storage, want.layers.storage, "case {case} {p:?}");
                assert_eq!(got.disk_reads, want.disk_reads, "case {case} {p:?}");
                assert_eq!(
                    got.thread_latency_ms, want.thread_latency_ms,
                    "case {case} {p:?}"
                );
                assert_eq!(
                    got.execution_time_ms, want.execution_time_ms,
                    "case {case} {p:?}"
                );
            }
        }
    }
}
