//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! The cache cores do a handful of hash-map operations per simulated
//! block request, and the trace memoizer hashes multi-megabyte layout
//! tables per lookup; `std`'s SipHash costs more than the rest of the
//! access path combined. This is the classic Fx multiply-rotate hash
//! (as used by rustc): not DoS-resistant, which is irrelevant here —
//! every key is simulator-internal — and fully deterministic, so runs
//! hash identically across processes.
//!
//! Swapping the hasher cannot change any simulated number: the maps are
//! only consulted by key (`get`/`insert`/`remove`), never iterated, and
//! eviction order lives in the intrusive recency lists.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Fx multiply-rotate hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of(v: impl Hash) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_ne!(hash_of(42u64), hash_of(43u64));
        assert_ne!(hash_of((0u32, 1u64)), hash_of((1u32, 0u64)));
        assert_ne!(hash_of("ab"), hash_of("ba"));
    }

    #[test]
    fn byte_stream_matches_word_path() {
        // 8-byte chunks through `write` equal one `write_u64`.
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * i);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * i)));
        }
        assert_eq!(m.len(), 1000);
    }
}
