//! The storage hierarchy topology (Table 1).
//!
//! Compute nodes connect in contiguous groups to I/O nodes; file blocks are
//! striped round-robin across storage nodes (PVFS). Capacities are in data
//! blocks: the paper's absolute byte sizes are scaled down together with the
//! workload footprints (see DESIGN.md §1, "Scaling substitution").

use crate::block::BlockAddr;
use crate::error::SimError;

/// Static description of the simulated platform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of compute nodes (each runs one application thread in the
    /// default execution).
    pub compute_nodes: usize,
    /// Number of I/O nodes (I/O forwarders); each serves
    /// `compute_nodes / io_nodes` compute nodes.
    pub io_nodes: usize,
    /// Number of storage nodes (file servers with disks).
    pub storage_nodes: usize,
    /// Capacity of each I/O-node cache, in data blocks.
    pub io_cache_blocks: usize,
    /// Capacity of each storage-node cache, in data blocks.
    pub storage_cache_blocks: usize,
    /// Data-block size in array elements (cache management unit = stripe
    /// size, per Table 1).
    pub block_elems: u64,
    /// Cache associativity (ways per hash-indexed set). Real storage
    /// caches index block tables by address hash; `ways >= capacity`
    /// degenerates to fully-associative.
    pub cache_ways: usize,
}

impl Topology {
    /// The default configuration mirroring Table 1's shape:
    /// (64 compute, 16 I/O, 4 storage) nodes, storage caches twice the
    /// I/O caches, block = stripe.
    pub fn paper_default() -> Topology {
        Topology {
            compute_nodes: 64,
            io_nodes: 16,
            storage_nodes: 4,
            io_cache_blocks: 96,
            storage_cache_blocks: 192,
            block_elems: 64,
            cache_ways: 8,
        }
    }

    /// A small topology for unit tests: (4, 2, 1) nodes.
    pub fn tiny() -> Topology {
        Topology {
            compute_nodes: 4,
            io_nodes: 2,
            storage_nodes: 1,
            io_cache_blocks: 8,
            storage_cache_blocks: 16,
            block_elems: 4,
            cache_ways: usize::MAX, // fully associative for unit tests
        }
    }

    /// Validate divisibility and positivity constraints. Malformed
    /// topologies are reported as [`SimError::InvalidTopology`] values so
    /// callers (and ultimately the experiment binaries) can reject them
    /// without aborting the process.
    pub fn validate(&self) -> Result<(), SimError> {
        let fail = |why: String| Err(SimError::InvalidTopology(why));
        if self.compute_nodes == 0 || self.io_nodes == 0 || self.storage_nodes == 0 {
            return fail(format!(
                "node counts must be positive (compute={}, io={}, storage={})",
                self.compute_nodes, self.io_nodes, self.storage_nodes
            ));
        }
        if !self.compute_nodes.is_multiple_of(self.io_nodes) {
            return fail(format!(
                "compute nodes must divide evenly over I/O nodes ({} over {})",
                self.compute_nodes, self.io_nodes
            ));
        }
        if self.io_cache_blocks == 0 || self.storage_cache_blocks == 0 {
            return fail(format!(
                "cache capacities must be positive (io={}, storage={})",
                self.io_cache_blocks, self.storage_cache_blocks
            ));
        }
        if self.block_elems == 0 {
            return fail("block size must be positive".to_string());
        }
        Ok(())
    }

    /// Compute nodes per I/O node.
    pub fn compute_per_io(&self) -> usize {
        self.compute_nodes / self.io_nodes
    }

    /// I/O nodes per storage-cache *sharing group*. All I/O nodes reach all
    /// storage nodes (striping), so for layout-pattern purposes the I/O
    /// layer fans in uniformly: `io_nodes / storage_nodes` when divisible,
    /// otherwise all I/O nodes share each storage cache.
    pub fn io_per_storage(&self) -> usize {
        if self.io_nodes.is_multiple_of(self.storage_nodes) {
            self.io_nodes / self.storage_nodes
        } else {
            self.io_nodes
        }
    }

    /// The I/O node serving compute node `c`.
    pub fn io_node_of_compute(&self, c: usize) -> usize {
        assert!(c < self.compute_nodes, "compute node out of range");
        let per = self.compute_per_io();
        // Fan-ins are powers of two in every paper configuration; a shift
        // beats a hardware divide on this per-request path.
        if per.is_power_of_two() {
            c >> per.trailing_zeros()
        } else {
            c / per
        }
    }

    /// The storage node holding `block` (PVFS round-robin striping, stripe
    /// size = block size).
    pub fn storage_node_of_block(&self, block: BlockAddr) -> usize {
        let n = self.storage_nodes as u64;
        if n.is_power_of_two() {
            (block.index & (n - 1)) as usize
        } else {
            (block.index % n) as usize
        }
    }

    /// The storage node serving `block` when only the nodes in `live_mask`
    /// (bit `n` ⇒ node `n` is up) are reachable: the first live node at or
    /// after the block's home node in round-robin order. This is the
    /// failover re-striping rule of the fault model — deterministic, and
    /// the identity map whenever the home node is live. With no live node
    /// the home node is returned (the caller treats a fully-dark window as
    /// fault-free rather than deadlocking the request).
    pub fn storage_node_of_block_masked(&self, block: BlockAddr, live_mask: u64) -> usize {
        let home = self.storage_node_of_block(block);
        let n = self.storage_nodes;
        for off in 0..n {
            let node = (home + off) % n;
            if live_mask >> node & 1 == 1 {
                return node;
            }
        }
        home
    }

    /// Aggregate I/O-layer cache capacity in blocks.
    pub fn total_io_cache(&self) -> usize {
        self.io_nodes * self.io_cache_blocks
    }

    /// Aggregate storage-layer cache capacity in blocks.
    pub fn total_storage_cache(&self) -> usize {
        self.storage_nodes * self.storage_cache_blocks
    }

    /// A copy with both cache capacities scaled by `num/den` (used by the
    /// Fig. 7(c) sensitivity sweep). Capacities are kept ≥ 1 block.
    pub fn with_cache_scale(&self, num: usize, den: usize) -> Topology {
        let mut t = self.clone();
        t.io_cache_blocks = (self.io_cache_blocks * num / den).max(1);
        t.storage_cache_blocks = (self.storage_cache_blocks * num / den).max(1);
        t
    }

    /// A copy with a different block size (Fig. 7(e)). Cache capacities in
    /// *blocks* are adjusted inversely so the byte capacity stays fixed,
    /// exactly as in the paper's sweep.
    pub fn with_block_elems(&self, block_elems: u64) -> Topology {
        let mut t = self.clone();
        let ratio_num = self.block_elems as usize;
        let ratio_den = block_elems as usize;
        t.block_elems = block_elems;
        t.io_cache_blocks = (self.io_cache_blocks * ratio_num / ratio_den).max(1);
        t.storage_cache_blocks = (self.storage_cache_blocks * ratio_num / ratio_den).max(1);
        t
    }

    /// A copy with different node counts (Fig. 7(d)); per-node cache sizes
    /// retain their defaults, matching the paper ("individual cache
    /// capacities are as shown in Table 1"). The copy is *not* validated —
    /// [`crate::StorageSystem::with_costs`] rejects malformed topologies
    /// when a system is built from one.
    pub fn with_node_counts(&self, compute: usize, io: usize, storage: usize) -> Topology {
        let mut t = self.clone();
        t.compute_nodes = compute;
        t.io_nodes = io;
        t.storage_nodes = storage;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let t = Topology::paper_default();
        t.validate().unwrap();
        assert_eq!(t.compute_per_io(), 4);
        assert_eq!(t.io_per_storage(), 4);
    }

    #[test]
    fn compute_to_io_routing() {
        let t = Topology::paper_default();
        assert_eq!(t.io_node_of_compute(0), 0);
        assert_eq!(t.io_node_of_compute(3), 0);
        assert_eq!(t.io_node_of_compute(4), 1);
        assert_eq!(t.io_node_of_compute(63), 15);
    }

    #[test]
    fn striping_round_robin() {
        let t = Topology::paper_default();
        assert_eq!(t.storage_node_of_block(BlockAddr::new(0, 0)), 0);
        assert_eq!(t.storage_node_of_block(BlockAddr::new(0, 1)), 1);
        assert_eq!(t.storage_node_of_block(BlockAddr::new(0, 4)), 0);
        assert_eq!(t.storage_node_of_block(BlockAddr::new(7, 5)), 1);
    }

    #[test]
    fn striping_is_balanced() {
        let t = Topology::paper_default();
        let mut counts = vec![0usize; t.storage_nodes];
        for i in 0..1000 {
            counts[t.storage_node_of_block(BlockAddr::new(0, i))] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "striping imbalance: {counts:?}");
    }

    #[test]
    fn cache_scaling() {
        let t = Topology::paper_default();
        let half = t.with_cache_scale(1, 2);
        assert_eq!(half.io_cache_blocks, t.io_cache_blocks / 2);
        assert_eq!(half.storage_cache_blocks, t.storage_cache_blocks / 2);
        // Never scales to zero.
        let tiny = t.with_cache_scale(1, 1_000_000);
        assert_eq!(tiny.io_cache_blocks, 1);
    }

    #[test]
    fn block_size_scaling_preserves_byte_capacity() {
        let t = Topology::paper_default();
        let halved = t.with_block_elems(t.block_elems / 2);
        assert_eq!(
            halved.io_cache_blocks as u64 * halved.block_elems,
            t.io_cache_blocks as u64 * t.block_elems
        );
    }

    #[test]
    fn indivisible_compute_rejected() {
        let t = Topology::paper_default().with_node_counts(10, 3, 1);
        let err = t.validate().unwrap_err();
        assert!(err.to_string().contains("divide evenly"), "{err}");
    }

    #[test]
    fn degenerate_topologies_rejected() {
        let mut t = Topology::paper_default();
        t.storage_nodes = 0;
        assert!(t.validate().is_err());
        let mut t = Topology::paper_default();
        t.io_cache_blocks = 0;
        assert!(t.validate().is_err());
        let mut t = Topology::paper_default();
        t.block_elems = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn masked_striping_fails_over_round_robin() {
        let t = Topology::paper_default(); // 4 storage nodes
        let b = BlockAddr::new(0, 1); // home node 1
        assert_eq!(t.storage_node_of_block_masked(b, 0b1111), 1);
        // Node 1 down → next live node in round-robin order.
        assert_eq!(t.storage_node_of_block_masked(b, 0b1101), 2);
        assert_eq!(t.storage_node_of_block_masked(b, 0b1001), 3);
        assert_eq!(t.storage_node_of_block_masked(b, 0b0001), 0);
        // Fully dark window degrades to the home node.
        assert_eq!(t.storage_node_of_block_masked(b, 0), 1);
    }
}
