//! The disk model.
//!
//! Each storage node owns one disk (Table 1: 40 GB, 10,000 RPM). A read
//! that continues the previous transfer (next LBA on the same disk) costs
//! only the transfer time; any other read pays average seek plus half a
//! rotation. File blocks map to LBAs per-file contiguously in stripe order,
//! which is how PVFS lays out stripe units on each server.

use crate::block::BlockAddr;

/// Disk latency parameters in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskModel {
    /// Average seek time.
    pub seek_ms: f64,
    /// Average rotational delay (half a revolution; 3 ms at 10k RPM).
    pub rotational_ms: f64,
    /// Transfer time of one data block.
    pub transfer_ms: f64,
}

impl DiskModel {
    /// Defaults for the paper's 10,000 RPM disks: 5 ms average seek,
    /// 60_000/10_000/2 = 3 ms rotational delay, 1 ms per-block transfer
    /// (for the default 64-element block).
    pub fn paper_default() -> DiskModel {
        DiskModel::for_block_elems(64)
    }

    /// Disk model for a given block size: seek and rotation are mechanical
    /// constants; the transfer time scales with the block size.
    pub fn for_block_elems(block_elems: u64) -> DiskModel {
        DiskModel {
            seek_ms: 5.0,
            rotational_ms: 3.0,
            transfer_ms: block_elems as f64 / 64.0,
        }
    }

    /// This model with every latency component scaled by `mult` — a
    /// degraded "straggler" disk (vibration, remapped sectors, background
    /// scrubbing). The fault model applies the multiplier to whole reads;
    /// this helper exists so tests and docs can state the degraded costs.
    pub fn degraded(&self, mult: f64) -> DiskModel {
        DiskModel {
            seek_ms: self.seek_ms * mult,
            rotational_ms: self.rotational_ms * mult,
            transfer_ms: self.transfer_ms * mult,
        }
    }

    /// Cost of a sequential (track-following) read.
    pub fn sequential_ms(&self) -> f64 {
        self.transfer_ms
    }

    /// Cost of a random read.
    pub fn random_ms(&self) -> f64 {
        self.seek_ms + self.rotational_ms + self.transfer_ms
    }
}

/// Size of the per-disk scheduling window: the number of recently served
/// LBAs a read may continue from. Models the elevator/NCQ reordering a
/// storage node applies to the interleaved request streams of many
/// concurrent threads — a stream that is contiguous *per thread* stays
/// sequential at the disk even when other threads' requests interleave.
pub const SCHED_WINDOW: usize = 64;

/// Maximum LBA distance from a recently served block that still counts as
/// sequential ("skip-sequential": track read-ahead serves short forward
/// skips at near-sequential cost).
pub const SKIP_DISTANCE: u64 = 4;

/// Sentinel filling empty window slots. Far above any reachable LBA
/// (LBAs are `file << 24 | stripe_index` with 32-bit files, so < 2^56),
/// and far below `u64::MAX` so the wrapping skip-distance test cannot
/// alias it onto small LBAs.
const EMPTY_LBA: u64 = u64::MAX - (SKIP_DISTANCE << 1);

/// Mutable per-disk state: recently served LBAs, used for sequentiality
/// detection under a scheduling window. The window holds at most
/// [`SCHED_WINDOW`] (= 64) distinct LBAs in first-served order, as a
/// fixed-size ring whose dead slots carry an unreachable sentinel: the
/// probe is one branch-free pass over all 64 slots (fully unrollable —
/// no length to test) and eviction is O(1), answering both the
/// skip-distance probe and the residency check cheaper than any hashed
/// set could.
#[derive(Clone, Debug)]
pub struct DiskState {
    /// Ring storage; live slots are `head, head+1, …, head+len-1 (mod 64)`
    /// in first-served order, every other slot holds [`EMPTY_LBA`].
    recent: [u64; SCHED_WINDOW],
    head: usize,
    len: usize,
    /// Total reads served.
    pub reads: u64,
    /// Reads that were sequential.
    pub sequential_reads: u64,
}

impl Default for DiskState {
    fn default() -> DiskState {
        DiskState {
            recent: [EMPTY_LBA; SCHED_WINDOW],
            head: 0,
            len: 0,
            reads: 0,
            sequential_reads: 0,
        }
    }
}

impl DiskState {
    /// Logical block address of `block` on its disk given `storage_nodes`
    /// striping: each file occupies a contiguous per-disk region holding
    /// its stripe units in order.
    pub fn lba_of(block: BlockAddr, storage_nodes: usize) -> u64 {
        // Files are given disjoint 2^24-block regions per disk; a 40 GB
        // disk at 128 KB blocks holds ~320k blocks, so regions never
        // overlap for realistic file counts.
        ((block.file as u64) << 24) | (block.index / storage_nodes as u64)
    }

    /// Serve a read of `block`; returns its latency. The read is
    /// sequential when it continues (or repeats) any LBA inside the
    /// scheduling window.
    pub fn read(&mut self, block: BlockAddr, model: &DiskModel, storage_nodes: usize) -> f64 {
        self.read_classified(block, model, storage_nodes).0
    }

    /// [`read`](Self::read), also returning whether the read was
    /// sequential — the instrumented access paths report the
    /// classification to their observer.
    pub fn read_classified(
        &mut self,
        block: BlockAddr,
        model: &DiskModel,
        storage_nodes: usize,
    ) -> (f64, bool) {
        let lba = Self::lba_of(block, storage_nodes);
        // One pass, no early exit, so the loop vectorizes:
        // `lba - x <= SKIP_DISTANCE` (wrapping) covers all skip offsets
        // 0..=SKIP_DISTANCE, and `d == 0` doubles as the residency check.
        let mut sequential = false;
        let mut resident = false;
        for &x in &self.recent {
            let d = lba.wrapping_sub(x);
            sequential |= d <= SKIP_DISTANCE;
            resident |= d == 0;
        }
        if self.len == SCHED_WINDOW {
            let popped = self.recent[self.head];
            self.recent[self.head] = EMPTY_LBA;
            self.head = (self.head + 1) % SCHED_WINDOW;
            self.len -= 1;
            // The probe above saw the pre-eviction window; the popped LBA
            // no longer counts for residency (each LBA appears once).
            resident &= popped != lba;
        }
        // Duplicate LBAs refresh nothing: the window holds distinct LBAs
        // in first-served order.
        if !resident {
            self.recent[(self.head + self.len) % SCHED_WINDOW] = lba;
            self.len += 1;
        }
        self.reads += 1;
        let ms = if sequential {
            self.sequential_reads += 1;
            model.sequential_ms()
        } else {
            model.random_ms()
        };
        (ms, sequential)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(0, i)
    }

    #[test]
    fn sequential_discount() {
        let m = DiskModel::paper_default();
        let mut d = DiskState::default();
        // First access is random.
        assert_eq!(d.read(b(0), &m, 1), m.random_ms());
        // Next block is sequential.
        assert_eq!(d.read(b(1), &m, 1), m.sequential_ms());
        assert_eq!(d.read(b(2), &m, 1), m.sequential_ms());
        // Jump is random again.
        assert_eq!(d.read(b(100), &m, 1), m.random_ms());
        assert_eq!(d.reads, 4);
        assert_eq!(d.sequential_reads, 2);
    }

    #[test]
    fn interleaved_streams_stay_sequential() {
        // Two contiguous streams interleaved: the scheduling window keeps
        // both sequential after their first read.
        let m = DiskModel::paper_default();
        let mut d = DiskState::default();
        let mut seq = 0;
        for i in 0..10u64 {
            if d.read(b(i), &m, 1) == m.sequential_ms() {
                seq += 1;
            }
            if d.read(b(1000 + i), &m, 1) == m.sequential_ms() {
                seq += 1;
            }
        }
        assert_eq!(seq, 18, "all but the two stream heads must be sequential");
    }

    #[test]
    fn skip_sequential_short_forward_jumps() {
        let m = DiskModel::paper_default();
        let mut d = DiskState::default();
        d.read(b(0), &m, 1);
        // A skip of SKIP_DISTANCE is still sequential …
        assert_eq!(d.read(b(SKIP_DISTANCE), &m, 1), m.sequential_ms());
        // … but a longer jump is not.
        assert_eq!(d.read(b(SKIP_DISTANCE + 100), &m, 1), m.random_ms());
        // Backward jumps beyond the window content are random.
        assert_eq!(d.read(b(1_000_000), &m, 1), m.random_ms());
    }

    #[test]
    fn window_eviction_forgets_old_streams() {
        let m = DiskModel::paper_default();
        let mut d = DiskState::default();
        d.read(b(0), &m, 1);
        // Flood the window with far-apart blocks.
        for i in 0..SCHED_WINDOW as u64 {
            d.read(b(10_000 + i * 100), &m, 1);
        }
        // The original stream has been evicted from the window.
        assert_eq!(d.read(b(1), &m, 1), m.random_ms());
    }

    #[test]
    fn striped_sequentiality() {
        // With 4-way striping, a disk sees every 4th file block; those are
        // consecutive LBAs on that disk.
        let m = DiskModel::paper_default();
        let mut d = DiskState::default();
        assert_eq!(d.read(b(0), &m, 4), m.random_ms());
        assert_eq!(d.read(b(4), &m, 4), m.sequential_ms());
        assert_eq!(d.read(b(8), &m, 4), m.sequential_ms());
    }

    #[test]
    fn rereading_same_block_is_sequential() {
        let m = DiskModel::paper_default();
        let mut d = DiskState::default();
        d.read(b(5), &m, 1);
        assert_eq!(d.read(b(5), &m, 1), m.sequential_ms());
    }

    #[test]
    fn different_files_have_distant_lbas() {
        let lba_a = DiskState::lba_of(BlockAddr::new(0, 0), 4);
        let lba_b = DiskState::lba_of(BlockAddr::new(1, 0), 4);
        assert!(lba_b > lba_a + 1_000_000);
    }

    #[test]
    fn model_costs() {
        let m = DiskModel::paper_default();
        assert!(m.random_ms() > m.sequential_ms());
        assert_eq!(m.random_ms(), 9.0);
        assert_eq!(m.sequential_ms(), 1.0);
    }

    #[test]
    fn degraded_model_scales_every_component() {
        let m = DiskModel::paper_default().degraded(3.0);
        assert_eq!(m.random_ms(), 27.0);
        assert_eq!(m.sequential_ms(), 3.0);
    }
}
