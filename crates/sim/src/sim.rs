//! The simulation driver.

use crate::fault::{FaultHook, FaultState, NoFaults};
use crate::stats::{LayerStats, SimReport};
use crate::system::StorageSystem;
use crate::trace::{JitterInterleaver, ThreadTrace};
use flo_obs::{NullObserver, Observer};

/// Per-run parameters of the execution-time model.
///
/// Compute time is charged *per thread* and is independent of the file
/// layout (the computation performed by the application does not change
/// when its files are reorganized); only the I/O stall varies between
/// layouts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunConfig {
    /// CPU time of each thread in milliseconds (the workload crate derives
    /// it from the thread's iteration count and the application's
    /// compute/IO ratio).
    pub compute_ms_per_thread: f64,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            compute_ms_per_thread: 0.0,
        }
    }
}

/// Deterministic seed of the jittered thread interleaving.
pub const INTERLEAVE_SEED: u64 = 0x5EED_F10C;

/// Drive `traces` through `system` with fair, deterministically jittered
/// thread interleaving (concurrent threads drift; see
/// [`crate::trace::JitterInterleaver`]).
///
/// Execution time is modelled as `max_t(compute_t + io_latency_t)`: the
/// parallel application finishes when its slowest thread does.
pub fn simulate(system: &mut StorageSystem, traces: &[ThreadTrace], cfg: &RunConfig) -> SimReport {
    simulate_observed(system, traces, cfg, &mut NullObserver)
}

/// [`simulate`], reporting per-event telemetry to `obs` (see
/// [`StorageSystem::access_observed`]). The report is bit-identical for
/// every observer; enabled observers additionally receive an end-of-run
/// per-set occupancy snapshot of every cache.
pub fn simulate_observed<O: Observer>(
    system: &mut StorageSystem,
    traces: &[ThreadTrace],
    cfg: &RunConfig,
    obs: &mut O,
) -> SimReport {
    drive(system, traces, cfg, obs, &mut NoFaults)
}

/// [`simulate`] under a fault plan: `faults` replays its seeded schedule
/// against the run (outages, stragglers, transient errors, cache
/// flushes), charging the degradation into the report's latencies. Same
/// state + same traces ⇒ bit-identical report; a quiet plan reproduces
/// [`simulate`] exactly.
pub fn simulate_faulted(
    system: &mut StorageSystem,
    traces: &[ThreadTrace],
    cfg: &RunConfig,
    faults: &mut FaultState,
) -> SimReport {
    simulate_faulted_observed(system, traces, cfg, &mut NullObserver, faults)
}

/// [`simulate_faulted`], additionally reporting telemetry — including the
/// injected [`flo_obs::FaultEvent`]s — to `obs`.
pub fn simulate_faulted_observed<O: Observer>(
    system: &mut StorageSystem,
    traces: &[ThreadTrace],
    cfg: &RunConfig,
    obs: &mut O,
    faults: &mut FaultState,
) -> SimReport {
    let _span = flo_obs::span("faults");
    drive(system, traces, cfg, obs, faults)
}

/// The shared driver: generic over both the observer and the fault hook,
/// so the unfaulted entry points monomorphize to the pre-fault walk.
fn drive<O: Observer, F: FaultHook>(
    system: &mut StorageSystem,
    traces: &[ThreadTrace],
    cfg: &RunConfig,
    obs: &mut O,
    faults: &mut F,
) -> SimReport {
    let mut latency = vec![0.0f64; traces.len()];
    let mut total_requests = 0u64;
    // The interleaved access walk is the phase worth timing; the span is
    // gated on `O::ENABLED` so the null-observer path stays free.
    let span = if O::ENABLED {
        Some(flo_obs::span("interleave"))
    } else {
        None
    };
    for (t, entry) in JitterInterleaver::new(traces, INTERLEAVE_SEED) {
        let ms = system.access_faulted(
            traces[t].compute_node,
            entry.block,
            entry.count,
            obs,
            faults,
        );
        latency[t] += ms;
        total_requests += 1;
    }
    drop(span);
    if O::ENABLED {
        system.snapshot_occupancy(obs);
    }
    let execution_time_ms = latency
        .iter()
        .map(|l| l + cfg.compute_ms_per_thread)
        .fold(0.0f64, f64::max);
    let (disk_reads, disk_sequential_reads) = system.disk_stats();
    SimReport {
        layers: LayerStats {
            io: system.io_layer_stats(),
            storage: system.storage_layer_stats(),
        },
        disk_reads,
        disk_sequential_reads,
        demotions: system.demotions(),
        thread_latency_ms: latency,
        compute_ms_per_thread: cfg.compute_ms_per_thread,
        execution_time_ms,
        total_requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockAddr;
    use crate::policies::PolicyKind;
    use crate::topology::Topology;

    fn trace(thread: usize, node: usize, blocks: &[u64]) -> ThreadTrace {
        let mut t = ThreadTrace::new(thread, node);
        for &i in blocks {
            t.push(BlockAddr::new(0, i));
        }
        t
    }

    #[test]
    fn report_counts_every_request() {
        let mut sys = StorageSystem::new(Topology::tiny(), PolicyKind::LruInclusive).unwrap();
        let traces = vec![trace(0, 0, &[1, 2, 3]), trace(1, 1, &[4, 5])];
        let report = simulate(&mut sys, &traces, &RunConfig::default());
        assert_eq!(report.total_requests, 5);
        assert_eq!(report.layers.io.accesses, 5);
        assert_eq!(report.thread_latency_ms.len(), 2);
        assert!(report.execution_time_ms > 0.0);
    }

    #[test]
    fn execution_time_is_slowest_thread() {
        let mut sys = StorageSystem::new(Topology::tiny(), PolicyKind::LruInclusive).unwrap();
        let traces = vec![
            trace(0, 0, &[1]),
            trace(1, 1, &(10..40).collect::<Vec<_>>()),
        ];
        let cfg = RunConfig::default();
        let report = simulate(&mut sys, &traces, &cfg);
        let t1_total = report.thread_latency_ms[1] + report.compute_ms_per_thread;
        assert!((report.execution_time_ms - t1_total).abs() < 1e-9);
        assert!(report.thread_latency_ms[1] > report.thread_latency_ms[0]);
    }

    #[test]
    fn warm_rerun_is_faster() {
        // Two identical passes over a working set that fits in cache: the
        // second pass must be all hits, so a combined trace costs less
        // than twice the cold trace.
        let blocks: Vec<u64> = (0..8).collect();
        let once = trace(0, 0, &blocks);
        let mut twice_blocks = blocks.clone();
        twice_blocks.extend(&blocks);
        let twice = trace(0, 0, &twice_blocks);

        let mut sys1 = StorageSystem::new(Topology::tiny(), PolicyKind::LruInclusive).unwrap();
        let r1 = simulate(&mut sys1, &[once], &RunConfig::default());
        let mut sys2 = StorageSystem::new(Topology::tiny(), PolicyKind::LruInclusive).unwrap();
        let r2 = simulate(&mut sys2, &[twice], &RunConfig::default());
        assert!(
            r2.thread_latency_ms[0] < 2.0 * r1.thread_latency_ms[0],
            "second pass should hit caches"
        );
        assert_eq!(r2.disk_reads, r1.disk_reads);
    }

    #[test]
    fn deterministic_replay() {
        let traces = vec![trace(0, 0, &[1, 5, 9, 1]), trace(1, 2, &[2, 5, 7])];
        let run = || {
            let mut sys = StorageSystem::new(Topology::tiny(), PolicyKind::LruInclusive).unwrap();
            simulate(&mut sys, &traces, &RunConfig::default())
        };
        let a = run();
        let b = run();
        assert_eq!(a.execution_time_ms, b.execution_time_ms);
        assert_eq!(a.disk_reads, b.disk_reads);
        assert_eq!(a.layers.io.hits, b.layers.io.hits);
    }

    #[test]
    fn contention_raises_misses() {
        // Two threads behind the same I/O node with disjoint working sets
        // bigger than the shared cache thrash each other; the same threads
        // with the same footprint behind different I/O nodes do better.
        let blocks_a: Vec<u64> = (0..12).chain(0..12).collect();
        let blocks_b: Vec<u64> = (100..112).chain(100..112).collect();
        let shared = vec![trace(0, 0, &blocks_a), trace(1, 1, &blocks_b)]; // both → io node 0
        let split = vec![trace(0, 0, &blocks_a), trace(1, 2, &blocks_b)]; // io nodes 0 and 1
        let mut sys_shared =
            StorageSystem::new(Topology::tiny(), PolicyKind::LruInclusive).unwrap();
        let r_shared = simulate(&mut sys_shared, &shared, &RunConfig::default());
        let mut sys_split = StorageSystem::new(Topology::tiny(), PolicyKind::LruInclusive).unwrap();
        let r_split = simulate(&mut sys_split, &split, &RunConfig::default());
        assert!(
            r_split.layers.io.hits >= r_shared.layers.io.hits,
            "splitting threads across caches must not hurt hits"
        );
    }
}
