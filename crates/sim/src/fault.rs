//! `flo-fault`: deterministic, seeded fault injection for degraded-mode
//! simulation.
//!
//! A [`FaultPlan`] describes *what can go wrong* in the simulated storage
//! hierarchy — storage-node outages (with failover re-striping of the
//! affected blocks), degraded "straggler" disks (latency multipliers),
//! fault-injected cache flushes/shrinks, and transient I/O errors absorbed
//! by a retry/backoff model whose waiting time is charged into the
//! simulated cost. A [`FaultState`] replays that plan against a run.
//!
//! **Determinism is the whole design.** Every fault decision is a pure
//! function of `(seed, sequence time)`: the schedule is derived by hashing
//! the plan seed with the interleaved request counter (and the node/window
//! under question) through an xorshift64* finalizer. Two runs of the same
//! traces under the same plan are bit-identical; the same plan replayed at
//! every point of a capacity sweep sees the *same* fault schedule, which is
//! what keeps `SimCache`/`RunCaches` memoization and the sweep engine's
//! per-point fallback sound. No host randomness, clocks, or I/O are ever
//! consulted.
//!
//! **Zero cost when inactive.** The simulator's access walk is generic
//! over a [`FaultHook`]; the [`NoFaults`] instantiation (`ACTIVE = false`)
//! overrides nothing and monomorphizes every hook site away, so the
//! no-plan path compiles to the pre-fault machine code — the same
//! discipline (and the same `perfstats --obs-gate` guard) as the
//! observability layer.

use crate::block::BlockAddr;
use crate::error::SimError;
use crate::system::StorageSystem;
use crate::topology::Topology;
use flo_obs::{FaultCounters, FaultEvent, Layer, Observer};

/// How transient I/O errors are absorbed: each failed attempt waits out a
/// timeout that grows exponentially, and the wait is charged to the
/// issuing thread's simulated latency. After `max_retries` failures the
/// read is served anyway (the fault model injects *transient* errors;
/// permanent media failures are modeled as node outages instead).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryModel {
    /// Maximum retry attempts sampled per disk read.
    pub max_retries: u32,
    /// Timeout charged for the first failed attempt, in milliseconds.
    pub base_timeout_ms: f64,
    /// Multiplier applied to the timeout after each failure (≥ 1).
    pub backoff: f64,
}

impl RetryModel {
    /// Defaults: up to 3 retries, 10 ms first timeout, doubling backoff.
    pub fn paper_default() -> RetryModel {
        RetryModel {
            max_retries: 3,
            base_timeout_ms: 10.0,
            backoff: 2.0,
        }
    }
}

/// A deterministic fault schedule. Rates are per-mille (‰) probabilities;
/// windowed faults (outages, stragglers, flushes) are re-sampled per node
/// every `window` interleaved requests, per-read faults (transient errors)
/// are sampled per request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the xorshift schedule; everything else being equal, runs
    /// with the same seed replay bit-identically.
    pub seed: u64,
    /// Fault-window length in interleaved requests (> 0).
    pub window: u64,
    /// Per-window, per-storage-node outage probability (‰). A dark node's
    /// blocks fail over to the next live node in round-robin order
    /// ([`Topology::storage_node_of_block_masked`]).
    pub outage_per_mille: u32,
    /// Per-window, per-storage-node straggler probability (‰).
    pub straggler_per_mille: u32,
    /// Latency multiplier of a straggler disk's reads (≥ 1).
    pub straggler_multiplier: f64,
    /// Per-read transient I/O error probability (‰), absorbed by `retry`.
    pub transient_per_mille: u32,
    /// Per-window, per-cache flush probability (‰); half of the sampled
    /// events flush the whole cache, the other half invalidate every
    /// second set (a transient capacity "shrink").
    pub flush_per_mille: u32,
    /// The transient-error retry model.
    pub retry: RetryModel,
}

/// Hash streams separating the independent fault decisions.
const STREAM_OUTAGE: u64 = 1;
const STREAM_STRAGGLER: u64 = 2;
const STREAM_TRANSIENT: u64 = 3;
const STREAM_FLUSH_IO: u64 = 4;
const STREAM_FLUSH_SC: u64 = 5;

#[inline]
fn xorshift64star(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The schedule hash: a pure function of `(seed, stream, a, b)`.
#[inline]
fn schedule(seed: u64, stream: u64, a: u64, b: u64) -> u64 {
    let x = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ a.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ b.wrapping_mul(0x1656_67B1_9E37_79F9);
    // xorshift state must be nonzero; two rounds decorrelate the seams.
    xorshift64star(xorshift64star(x | 1))
}

/// Whether the scheduled event at `(stream, a, b)` fires at `per_mille`.
#[inline]
fn chance(seed: u64, stream: u64, a: u64, b: u64, per_mille: u32) -> bool {
    per_mille > 0 && schedule(seed, stream, a, b) % 1000 < u64::from(per_mille)
}

impl FaultPlan {
    /// A plan that injects nothing: active machinery, zero faults. Runs
    /// under a quiet plan are bit-identical to the no-plan path (asserted
    /// by the differential proptests).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            window: 64,
            outage_per_mille: 0,
            straggler_per_mille: 0,
            straggler_multiplier: 1.0,
            transient_per_mille: 0,
            flush_per_mille: 0,
            retry: RetryModel::paper_default(),
        }
    }

    /// A representative degraded cluster: occasional outages, noticeably
    /// slow stragglers, sporadic transient errors and rare cache flushes.
    pub fn default_degraded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            window: 64,
            outage_per_mille: 8,
            straggler_per_mille: 60,
            straggler_multiplier: 4.0,
            transient_per_mille: 30,
            flush_per_mille: 5,
            retry: RetryModel::paper_default(),
        }
    }

    /// [`FaultPlan::default_degraded`] with every rate scaled by
    /// `intensity` (0 ⇒ [`FaultPlan::quiet`], 1 ⇒ the defaults; values
    /// above 1 scale further, saturating at certainty). The `figr`
    /// experiment sweeps this knob.
    pub fn with_intensity(seed: u64, intensity: f64) -> FaultPlan {
        let base = FaultPlan::default_degraded(seed);
        let scale = |r: u32| ((f64::from(r) * intensity.max(0.0)).round() as u32).min(1000);
        FaultPlan {
            outage_per_mille: scale(base.outage_per_mille),
            straggler_per_mille: scale(base.straggler_per_mille),
            transient_per_mille: scale(base.transient_per_mille),
            flush_per_mille: scale(base.flush_per_mille),
            ..base
        }
    }

    /// Whether the transient-error schedule fires for retry `attempt` of
    /// the disk read served at interleaved request `request`. This is the
    /// exact draw [`FaultState::disk_cost`] consults — exported so the
    /// real-bytes store's I/O fault injector fails its pread calls on the
    /// *same* schedule and the measured retry tallies can be asserted
    /// equal to the simulated ones.
    #[inline]
    pub fn transient_fires(&self, request: u64, attempt: u32) -> bool {
        chance(
            self.seed,
            STREAM_TRANSIENT,
            request,
            u64::from(attempt),
            self.transient_per_mille,
        )
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_quiet(&self) -> bool {
        self.outage_per_mille == 0
            && self.straggler_per_mille == 0
            && self.transient_per_mille == 0
            && self.flush_per_mille == 0
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), SimError> {
        let fail = |why: String| Err(SimError::InvalidFaultPlan(why));
        if self.window == 0 {
            return fail("window must be positive".to_string());
        }
        for (name, r) in [
            ("outage_per_mille", self.outage_per_mille),
            ("straggler_per_mille", self.straggler_per_mille),
            ("transient_per_mille", self.transient_per_mille),
            ("flush_per_mille", self.flush_per_mille),
        ] {
            if r > 1000 {
                return fail(format!("{name} = {r} exceeds 1000"));
            }
        }
        if !self.straggler_multiplier.is_finite() || self.straggler_multiplier < 1.0 {
            return fail(format!(
                "straggler_multiplier must be a finite value >= 1, got {}",
                self.straggler_multiplier
            ));
        }
        if self.retry.max_retries > 16 {
            return fail(format!(
                "max_retries = {} exceeds 16",
                self.retry.max_retries
            ));
        }
        if !self.retry.base_timeout_ms.is_finite() || self.retry.base_timeout_ms < 0.0 {
            return fail(format!(
                "base_timeout_ms must be a finite value >= 0, got {}",
                self.retry.base_timeout_ms
            ));
        }
        if !self.retry.backoff.is_finite() || self.retry.backoff < 1.0 {
            return fail(format!(
                "backoff must be a finite value >= 1, got {}",
                self.retry.backoff
            ));
        }
        Ok(())
    }
}

/// The hook the simulator's access walk consults at its fault-injection
/// points. [`FaultState`] is the live implementation; [`NoFaults`]
/// (`ACTIVE = false`) compiles every site away — instrumented code must
/// never *behave* differently when the hook is inactive.
pub trait FaultHook {
    /// Whether this hook can inject anything. Sites skip fault work (and
    /// the optimizer deletes it) when `false`.
    const ACTIVE: bool = true;

    /// Called once per interleaved request before routing: advances the
    /// schedule clock and applies window-boundary events (outage masks,
    /// cache flushes) to `system`.
    #[inline]
    fn on_request<O: Observer>(&mut self, system: &mut StorageSystem, obs: &mut O) {
        let _ = (system, obs);
    }

    /// Failover routing: the storage node actually serving `block` given
    /// its healthy `home` node.
    #[inline]
    fn route<O: Observer>(
        &mut self,
        topo: &Topology,
        block: BlockAddr,
        home: usize,
        obs: &mut O,
    ) -> usize {
        let _ = (topo, block, obs);
        home
    }

    /// Degraded-mode disk cost: the latency actually charged for a read
    /// at `node` that would cost `ms` on healthy hardware (straggler
    /// multipliers, transient-error retries).
    #[inline]
    fn disk_cost<O: Observer>(&mut self, node: usize, ms: f64, obs: &mut O) -> f64 {
        let _ = (node, obs);
        ms
    }
}

/// The inactive hook: overrides nothing, so every fault site compiles to
/// the pre-fault code.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    const ACTIVE: bool = false;
}

/// A [`FaultPlan`] replaying against one run: the schedule clock, the
/// current window's outage/straggler masks, and the injected-fault
/// tallies. Build one per simulation ([`FaultState::new`]); reusing a
/// state across runs would continue the sequence clock and break replay.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    /// Interleaved-request counter (the schedule's sequence time).
    seq: u64,
    /// Window the masks below were sampled for (`u64::MAX` = none yet).
    window: u64,
    /// Bit `n` set ⇔ storage node `n` is up in the current window.
    live_mask: u64,
    /// Bit `n` set ⇔ storage node `n` is degraded in the current window.
    straggler_mask: u64,
    stats: FaultCounters,
}

impl FaultState {
    /// A fresh replay of `plan`, validated.
    pub fn new(plan: FaultPlan) -> Result<FaultState, SimError> {
        plan.validate()?;
        Ok(FaultState {
            plan,
            seq: 0,
            window: u64::MAX,
            live_mask: u64::MAX,
            straggler_mask: 0,
            stats: FaultCounters::default(),
        })
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injected-fault tallies so far.
    pub fn stats(&self) -> &FaultCounters {
        &self.stats
    }

    /// Requests ticked so far.
    pub fn requests(&self) -> u64 {
        self.seq
    }

    fn enter_window<O: Observer>(&mut self, w: u64, system: &mut StorageSystem, obs: &mut O) {
        self.window = w;
        let topo = system.topology().clone();
        let seed = self.plan.seed;
        // Outage + straggler masks for the window.
        let mut live = 0u64;
        let mut stragglers = 0u64;
        for node in 0..topo.storage_nodes.min(64) {
            if chance(
                seed,
                STREAM_OUTAGE,
                node as u64,
                w,
                self.plan.outage_per_mille,
            ) {
                self.stats.outages += 1;
                obs.fault(FaultEvent::Outage { node });
            } else {
                live |= 1 << node;
            }
            if chance(
                seed,
                STREAM_STRAGGLER,
                node as u64,
                w,
                self.plan.straggler_per_mille,
            ) {
                stragglers |= 1 << node;
            }
        }
        self.live_mask = live;
        self.straggler_mask = stragglers;
        // Cache flushes/shrinks: an independent draw per cache; the draw's
        // high bit picks full flush vs. half-capacity shrink.
        if self.plan.flush_per_mille > 0 {
            for node in 0..topo.io_nodes {
                let roll = schedule(seed, STREAM_FLUSH_IO, node as u64, w);
                if roll % 1000 < u64::from(self.plan.flush_per_mille) {
                    let blocks = if roll >> 32 & 1 == 0 {
                        system.flush_io_cache(node)
                    } else {
                        system.shrink_io_cache(node, w as usize)
                    };
                    self.stats.cache_flushes += 1;
                    self.stats.flushed_blocks += blocks as u64;
                    obs.fault(FaultEvent::CacheFlush {
                        layer: Layer::Io,
                        node,
                        blocks,
                    });
                }
            }
            for node in 0..topo.storage_nodes {
                let roll = schedule(seed, STREAM_FLUSH_SC, node as u64, w);
                if roll % 1000 < u64::from(self.plan.flush_per_mille) {
                    let blocks = if roll >> 32 & 1 == 0 {
                        system.flush_storage_cache(node)
                    } else {
                        system.shrink_storage_cache(node, w as usize)
                    };
                    self.stats.cache_flushes += 1;
                    self.stats.flushed_blocks += blocks as u64;
                    obs.fault(FaultEvent::CacheFlush {
                        layer: Layer::Storage,
                        node,
                        blocks,
                    });
                }
            }
        }
    }
}

impl FaultHook for FaultState {
    #[inline]
    fn on_request<O: Observer>(&mut self, system: &mut StorageSystem, obs: &mut O) {
        let w = self.seq / self.plan.window;
        if w != self.window {
            self.enter_window(w, system, obs);
        }
        self.seq += 1;
    }

    #[inline]
    fn route<O: Observer>(
        &mut self,
        topo: &Topology,
        block: BlockAddr,
        home: usize,
        obs: &mut O,
    ) -> usize {
        if self.live_mask >> home & 1 == 1 {
            return home;
        }
        let to = topo.storage_node_of_block_masked(block, self.live_mask);
        if to != home {
            self.stats.failovers += 1;
            obs.fault(FaultEvent::Failover { from: home, to });
        }
        to
    }

    fn disk_cost<O: Observer>(&mut self, node: usize, ms: f64, obs: &mut O) -> f64 {
        let mut total = ms;
        if self.straggler_mask >> node & 1 == 1 {
            let extra = ms * (self.plan.straggler_multiplier - 1.0);
            total += extra;
            self.stats.straggler_reads += 1;
            self.stats.straggler_ms += extra;
            obs.fault(FaultEvent::StragglerRead {
                node,
                extra_ms: extra,
            });
        }
        if self.plan.transient_per_mille > 0 {
            // `seq` was advanced by `on_request`, so `seq - 1` names the
            // current request; at most one disk read happens per request.
            let req = self.seq.wrapping_sub(1);
            let mut wait = self.plan.retry.base_timeout_ms;
            for attempt in 0..self.plan.retry.max_retries {
                if !self.plan.transient_fires(req, attempt) {
                    break;
                }
                total += wait;
                self.stats.retries += 1;
                self.stats.retry_ms += wait;
                obs.fault(FaultEvent::Retry {
                    node,
                    attempt,
                    wait_ms: wait,
                });
                wait *= self.plan.retry.backoff;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flo_obs::NullObserver;

    #[test]
    fn quiet_plan_is_quiet_and_valid() {
        let p = FaultPlan::quiet(42);
        assert!(p.is_quiet());
        p.validate().unwrap();
        assert!(!FaultPlan::default_degraded(42).is_quiet());
        FaultPlan::default_degraded(42).validate().unwrap();
    }

    #[test]
    fn intensity_scales_rates() {
        let zero = FaultPlan::with_intensity(7, 0.0);
        assert!(zero.is_quiet());
        let one = FaultPlan::with_intensity(7, 1.0);
        assert_eq!(one, FaultPlan::default_degraded(7));
        let ten = FaultPlan::with_intensity(7, 1000.0);
        assert_eq!(ten.outage_per_mille, 1000, "rates saturate at certainty");
        ten.validate().unwrap();
    }

    #[test]
    fn invalid_plans_rejected() {
        let mut p = FaultPlan::quiet(1);
        p.window = 0;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::quiet(1);
        p.outage_per_mille = 1001;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::quiet(1);
        p.straggler_multiplier = 0.5;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::quiet(1);
        p.straggler_multiplier = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::quiet(1);
        p.retry.backoff = 0.0;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::quiet(1);
        p.retry.max_retries = 99;
        assert!(p.validate().is_err());
    }

    #[test]
    fn schedule_is_pure_and_seed_sensitive() {
        assert_eq!(schedule(1, 2, 3, 4), schedule(1, 2, 3, 4));
        assert_ne!(schedule(1, 2, 3, 4), schedule(2, 2, 3, 4));
        assert_ne!(
            schedule(1, STREAM_OUTAGE, 3, 4),
            schedule(1, STREAM_STRAGGLER, 3, 4)
        );
        // Certainty and impossibility.
        assert!(chance(9, 1, 0, 0, 1000));
        assert!(!chance(9, 1, 0, 0, 0));
    }

    #[test]
    fn quiet_state_never_reroutes_or_charges() {
        let topo = Topology::paper_default();
        let mut st = FaultState::new(FaultPlan::quiet(5)).unwrap();
        let mut obs = NullObserver;
        let b = crate::BlockAddr::new(0, 2);
        assert_eq!(st.route(&topo, b, 2, &mut obs), 2);
        assert_eq!(st.disk_cost(2, 9.0, &mut obs), 9.0);
        assert!(!st.stats().any());
    }
}
