//! Per-thread block-access traces.
//!
//! A [`ThreadTrace`] is the stream of data-block requests one application
//! thread issues, in program order. Consecutive element accesses that fall
//! into the same block coalesce into a single *request* carrying an
//! element `count` — exactly what a buffering MPI-IO runtime does: one
//! block transfer serves all consecutive element reads within the block.
//! Cache statistics are charged per element (`count`), latency per
//! transfer, which reproduces both the paper's miss-rate view and its
//! execution-time view.

use crate::block::BlockAddr;
use std::sync::OnceLock;

/// One coalesced block request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// The requested block.
    pub block: BlockAddr,
    /// Number of consecutive element accesses served by this request.
    pub count: u32,
}

/// The block-request stream of one thread.
#[derive(Clone, Debug, Default)]
pub struct ThreadTrace {
    /// Thread id.
    pub thread: usize,
    /// Compute node the thread runs on.
    pub compute_node: usize,
    /// Coalesced requests in program order.
    pub entries: Vec<TraceEntry>,
    /// Lazily computed distinct-block footprint (invalidated on push).
    distinct: OnceLock<usize>,
}

impl PartialEq for ThreadTrace {
    fn eq(&self, other: &ThreadTrace) -> bool {
        self.thread == other.thread
            && self.compute_node == other.compute_node
            && self.entries == other.entries
    }
}

impl Eq for ThreadTrace {}

impl ThreadTrace {
    /// Empty trace for `thread` on `compute_node`.
    pub fn new(thread: usize, compute_node: usize) -> ThreadTrace {
        ThreadTrace {
            thread,
            compute_node,
            entries: Vec::new(),
            distinct: OnceLock::new(),
        }
    }

    /// Record one element access to `block`, coalescing with the previous
    /// request when it targeted the same block.
    pub fn push(&mut self, block: BlockAddr) {
        self.push_run(block, 1);
    }

    /// Record `count` consecutive element accesses to `block` at once,
    /// coalescing with the previous request when it targeted the same
    /// block. A run is exactly equivalent to `count` successive
    /// [`push`](ThreadTrace::push) calls — the fast trace generator emits
    /// whole block runs per innermost loop segment through this.
    pub fn push_run(&mut self, block: BlockAddr, count: u32) {
        debug_assert!(count > 0, "push_run: empty run");
        self.distinct = OnceLock::new();
        if let Some(last) = self.entries.last_mut() {
            if last.block == block {
                last.count += count;
                return;
            }
        }
        self.entries.push(TraceEntry { block, count });
    }

    /// Number of block requests (transfers).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no requests were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total element accesses across all requests.
    pub fn element_accesses(&self) -> u64 {
        self.entries.iter().map(|e| e.count as u64).sum()
    }

    /// Number of *distinct* blocks touched (the thread's block footprint —
    /// the quantity the paper's optimization minimizes). Computed on
    /// first call and cached until the trace is mutated — experiment
    /// code queries this repeatedly on traces that no longer change, and
    /// the former sort+dedup per call dominated several figure runs.
    pub fn distinct_blocks(&self) -> usize {
        *self.distinct.get_or_init(|| {
            let mut set: Vec<BlockAddr> = self.entries.iter().map(|e| e.block).collect();
            set.sort_unstable();
            set.dedup();
            set.len()
        })
    }

    /// Iterate over the requested blocks (ignoring counts).
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.entries.iter().map(|e| e.block)
    }
}

/// Round-robin interleaving of several thread traces: each round takes one
/// request from every unfinished trace, modelling concurrently executing
/// threads contending for the shared caches.
pub struct Interleaver<'a> {
    traces: &'a [ThreadTrace],
    positions: Vec<usize>,
    current: usize,
    remaining: usize,
}

impl<'a> Interleaver<'a> {
    /// Start interleaving.
    pub fn new(traces: &'a [ThreadTrace]) -> Interleaver<'a> {
        let remaining = traces.iter().map(ThreadTrace::len).sum();
        Interleaver {
            traces,
            positions: vec![0; traces.len()],
            current: 0,
            remaining,
        }
    }
}

impl Iterator for Interleaver<'_> {
    /// `(trace index, request)` pairs in global interleaved order.
    type Item = (usize, TraceEntry);

    fn next(&mut self) -> Option<(usize, TraceEntry)> {
        if self.remaining == 0 {
            return None;
        }
        loop {
            let t = self.current;
            self.current = (self.current + 1) % self.traces.len();
            let pos = self.positions[t];
            if pos < self.traces[t].entries.len() {
                self.positions[t] = pos + 1;
                self.remaining -= 1;
                return Some((t, self.traces[t].entries[pos]));
            }
        }
    }
}

/// Fair but *jittered* interleaving: requests are drawn from the threads
/// at equal average rates, but the per-step order is deterministic
/// pseudo-random instead of strict rotation. Real concurrently-executing
/// threads drift relative to each other; strict round-robin would keep
/// identical per-thread patterns in artificial lock-step (e.g. making
/// 64 synchronized strided scans look perfectly sequential at the disks).
pub struct JitterInterleaver<'a> {
    traces: &'a [ThreadTrace],
    positions: Vec<usize>,
    /// Threads that still have pending requests.
    active: Vec<usize>,
    remaining: usize,
    rng: u64,
}

impl<'a> JitterInterleaver<'a> {
    /// Start interleaving with a deterministic seed.
    pub fn new(traces: &'a [ThreadTrace], seed: u64) -> JitterInterleaver<'a> {
        let remaining = traces.iter().map(ThreadTrace::len).sum();
        let active = (0..traces.len())
            .filter(|&t| !traces[t].is_empty())
            .collect();
        JitterInterleaver {
            traces,
            positions: vec![0; traces.len()],
            active,
            remaining,
            rng: seed | 1,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic, fast, good enough for scheduling.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl Iterator for JitterInterleaver<'_> {
    type Item = (usize, TraceEntry);

    fn next(&mut self) -> Option<(usize, TraceEntry)> {
        if self.remaining == 0 {
            return None;
        }
        let pick = (self.next_rand() % self.active.len() as u64) as usize;
        let t = self.active[pick];
        let pos = self.positions[t];
        let entry = self.traces[t].entries[pos];
        self.positions[t] = pos + 1;
        self.remaining -= 1;
        if self.positions[t] == self.traces[t].entries.len() {
            self.active.swap_remove(pick);
        }
        Some((t, entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(0, i)
    }

    #[test]
    fn push_coalesces_consecutive_elements() {
        let mut t = ThreadTrace::new(0, 0);
        t.push(b(1));
        t.push(b(1));
        t.push(b(2));
        t.push(b(1));
        assert_eq!(
            t.entries,
            vec![
                TraceEntry {
                    block: b(1),
                    count: 2
                },
                TraceEntry {
                    block: b(2),
                    count: 1
                },
                TraceEntry {
                    block: b(1),
                    count: 1
                },
            ]
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.element_accesses(), 4);
        assert_eq!(t.distinct_blocks(), 2);
    }

    #[test]
    fn push_run_equals_repeated_push() {
        let mut runs = ThreadTrace::new(0, 0);
        runs.push_run(b(1), 3);
        runs.push_run(b(1), 2);
        runs.push_run(b(2), 4);
        runs.push_run(b(1), 1);
        let mut singles = ThreadTrace::new(0, 0);
        for i in [1, 1, 1, 1, 1, 2, 2, 2, 2, 1] {
            singles.push(b(i));
        }
        assert_eq!(runs, singles);
        assert_eq!(runs.element_accesses(), 10);
    }

    #[test]
    fn distinct_blocks_cache_invalidates_on_push() {
        let mut t = ThreadTrace::new(0, 0);
        t.push(b(1));
        t.push(b(2));
        assert_eq!(t.distinct_blocks(), 2);
        assert_eq!(t.distinct_blocks(), 2, "cached value must be stable");
        t.push(b(3));
        assert_eq!(t.distinct_blocks(), 3, "push must invalidate the cache");
        t.push_run(b(9), 5);
        assert_eq!(t.distinct_blocks(), 4, "push_run must invalidate the cache");
        let copy = t.clone();
        assert_eq!(copy.distinct_blocks(), 4);
        assert_eq!(copy, t, "equality ignores the cache");
    }

    #[test]
    fn interleaver_round_robin() {
        let mut t0 = ThreadTrace::new(0, 0);
        t0.push(b(1));
        t0.push(b(2));
        let mut t1 = ThreadTrace::new(1, 1);
        t1.push(b(10));
        t1.push(b(20));
        let traces = vec![t0, t1];
        let order: Vec<(usize, BlockAddr)> = Interleaver::new(&traces)
            .map(|(t, e)| (t, e.block))
            .collect();
        assert_eq!(order, vec![(0, b(1)), (1, b(10)), (0, b(2)), (1, b(20))]);
    }

    #[test]
    fn interleaver_handles_ragged_lengths() {
        let mut t0 = ThreadTrace::new(0, 0);
        t0.push(b(1));
        let mut t1 = ThreadTrace::new(1, 1);
        for i in 0..3 {
            t1.push(b(10 + i));
        }
        let traces = vec![t0, t1];
        let order: Vec<(usize, BlockAddr)> = Interleaver::new(&traces)
            .map(|(t, e)| (t, e.block))
            .collect();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], (0, b(1)));
        assert_eq!(&order[1..], &[(1, b(10)), (1, b(11)), (1, b(12))]);
    }

    #[test]
    fn interleaver_with_empty_traces() {
        let traces = vec![ThreadTrace::new(0, 0), ThreadTrace::new(1, 1)];
        assert_eq!(Interleaver::new(&traces).count(), 0);
    }

    #[test]
    fn interleaver_consumes_everything_once() {
        let mut t0 = ThreadTrace::new(0, 0);
        let mut t1 = ThreadTrace::new(1, 2);
        for i in 0..5 {
            t0.push(b(i));
        }
        for i in 0..2 {
            t1.push(b(100 + i));
        }
        let traces = vec![t0.clone(), t1.clone()];
        let collected: Vec<(usize, TraceEntry)> = Interleaver::new(&traces).collect();
        assert_eq!(collected.len(), 7);
        let from_t0: Vec<TraceEntry> = collected
            .iter()
            .filter(|(t, _)| *t == 0)
            .map(|&(_, e)| e)
            .collect();
        assert_eq!(from_t0, t0.entries);
    }

    #[test]
    fn jitter_interleaver_consumes_everything_in_thread_order() {
        let mut t0 = ThreadTrace::new(0, 0);
        let mut t1 = ThreadTrace::new(1, 1);
        for i in 0..10 {
            t0.push(b(i));
        }
        for i in 0..4 {
            t1.push(b(100 + i));
        }
        let traces = vec![t0.clone(), t1.clone()];
        let collected: Vec<(usize, TraceEntry)> = JitterInterleaver::new(&traces, 42).collect();
        assert_eq!(collected.len(), 14);
        // Each thread's own requests keep program order.
        for (idx, trace) in traces.iter().enumerate() {
            let mine: Vec<TraceEntry> = collected
                .iter()
                .filter(|(t, _)| *t == idx)
                .map(|&(_, e)| e)
                .collect();
            assert_eq!(mine, trace.entries, "thread {idx} reordered");
        }
    }

    #[test]
    fn jitter_interleaver_is_deterministic_per_seed() {
        let mut t0 = ThreadTrace::new(0, 0);
        let mut t1 = ThreadTrace::new(1, 1);
        for i in 0..20 {
            t0.push(b(i));
            t1.push(b(100 + i));
        }
        let traces = vec![t0, t1];
        let a: Vec<(usize, TraceEntry)> = JitterInterleaver::new(&traces, 7).collect();
        let b1: Vec<(usize, TraceEntry)> = JitterInterleaver::new(&traces, 7).collect();
        let c: Vec<(usize, TraceEntry)> = JitterInterleaver::new(&traces, 8).collect();
        assert_eq!(a, b1, "same seed must replay identically");
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn jitter_interleaver_handles_empty() {
        let traces = vec![ThreadTrace::new(0, 0)];
        assert_eq!(JitterInterleaver::new(&traces, 1).count(), 0);
    }

    #[test]
    fn coalesced_counts_survive_interleaving() {
        let mut t0 = ThreadTrace::new(0, 0);
        t0.push(b(1));
        t0.push(b(1));
        t0.push(b(1));
        let traces = vec![t0];
        let reqs: Vec<TraceEntry> = Interleaver::new(&traces).map(|(_, e)| e).collect();
        assert_eq!(
            reqs,
            vec![TraceEntry {
                block: b(1),
                count: 3
            }]
        );
    }
}
