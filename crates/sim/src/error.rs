//! The typed error spine of the simulator.
//!
//! Invalid configurations — malformed topologies, empty sweeps, nonsense
//! fault plans — surface as [`SimError`] values instead of panics, so the
//! experiment binaries can print a friendly message and exit nonzero (the
//! workspace is dependency-free, so this is a hand-rolled `thiserror`-style
//! enum: `Display` for humans, `std::error::Error` for composition).

use std::fmt;

/// Everything the simulator can reject about its inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A [`crate::Topology`] violates a structural constraint.
    InvalidTopology(String),
    /// A capacity sweep was malformed (no points, observer mismatch).
    InvalidSweep(String),
    /// A [`crate::fault::FaultPlan`] violates a parameter constraint.
    InvalidFaultPlan(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTopology(why) => write!(f, "invalid topology: {why}"),
            SimError::InvalidSweep(why) => write!(f, "invalid sweep: {why}"),
            SimError::InvalidFaultPlan(why) => write!(f, "invalid fault plan: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_reason() {
        let e = SimError::InvalidTopology("zero storage nodes".into());
        assert_eq!(e.to_string(), "invalid topology: zero storage nodes");
        let e: Box<dyn std::error::Error> = Box::new(SimError::InvalidSweep("no points".into()));
        assert!(e.to_string().contains("no points"));
    }
}
