//! DEMOTE-LRU: exclusive caching via demotions.
//!
//! Wong & Wilkes (USENIX ATC'02) make the client/array cache pair
//! *exclusive*: when the upper (client — here: I/O node) cache evicts a
//! block, it DEMOTEs it to the lower (array — here: storage node) cache
//! instead of dropping it; the array cache inserts demoted blocks at the
//! MRU end of its LRU list, while blocks it reads from disk on behalf of
//! the client are not retained (they go straight up, keeping the pair
//! exclusive). The aggregate hierarchy then behaves like one cache of the
//! *combined* size instead of duplicating content at both layers.
//!
//! The per-access walk is implemented here over a borrowed (upper, lower)
//! cache pair so it can be unit-tested in isolation; [`crate::system`]
//! calls it with the caches selected by the topology routing.

use crate::block::BlockAddr;
use crate::cache::{LruCore, SetAssocCache};

/// The cache operations DEMOTE needs, implemented by both the flat LRU
/// core and the set-associative cache.
pub trait DemoteCache {
    /// Weighted lookup (see [`LruCore::access_weighted`]).
    fn access_weighted(&mut self, block: BlockAddr, weight: u32) -> bool;
    /// Insert at MRU; returns the evicted victim if full.
    fn insert(&mut self, block: BlockAddr) -> Option<BlockAddr>;
    /// Remove a resident block.
    fn remove(&mut self, block: BlockAddr) -> bool;
}

impl DemoteCache for LruCore {
    fn access_weighted(&mut self, block: BlockAddr, weight: u32) -> bool {
        LruCore::access_weighted(self, block, weight)
    }
    fn insert(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        LruCore::insert(self, block)
    }
    fn remove(&mut self, block: BlockAddr) -> bool {
        LruCore::remove(self, block)
    }
}

impl DemoteCache for SetAssocCache {
    fn access_weighted(&mut self, block: BlockAddr, weight: u32) -> bool {
        SetAssocCache::access_weighted(self, block, weight)
    }
    fn insert(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        SetAssocCache::insert(self, block)
    }
    fn remove(&mut self, block: BlockAddr) -> bool {
        SetAssocCache::remove(self, block)
    }
}

/// Where a DEMOTE-LRU access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemoteOutcome {
    /// Hit in the upper (I/O node) cache.
    UpperHit,
    /// Hit in the lower (storage node) cache; block promoted (and removed
    /// below — exclusivity).
    LowerHit {
        /// Whether the promotion triggered a demotion of the upper's LRU
        /// victim back down (costs an extra block transfer).
        demoted: bool,
    },
    /// Missed both caches; read from disk into the upper cache only.
    DiskRead {
        /// Whether inserting into the upper cache demoted a victim.
        demoted: bool,
    },
}

/// Perform one DEMOTE-LRU access against an (upper, lower) cache pair.
pub fn access<C: DemoteCache>(upper: &mut C, lower: &mut C, block: BlockAddr) -> DemoteOutcome {
    access_weighted(upper, lower, block, 1)
}

/// Weighted variant: the upper cache is charged for `weight` coalesced
/// element accesses; the lower cache sees at most one block request.
pub fn access_weighted<C: DemoteCache>(
    upper: &mut C,
    lower: &mut C,
    block: BlockAddr,
    weight: u32,
) -> DemoteOutcome {
    if upper.access_weighted(block, weight) {
        return DemoteOutcome::UpperHit;
    }
    if lower.access_weighted(block, 1) {
        // Exclusive promote: remove below, install above, demote victim.
        lower.remove(block);
        let evicted = upper.insert(block);
        let demoted = match evicted {
            Some(victim) => {
                lower.insert(victim);
                true
            }
            None => false,
        };
        return DemoteOutcome::LowerHit { demoted };
    }
    // Disk read: exclusive placement — upper only.
    let evicted = upper.insert(block);
    let demoted = match evicted {
        Some(victim) => {
            lower.insert(victim);
            true
        }
        None => false,
    };
    DemoteOutcome::DiskRead { demoted }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(0, i)
    }

    #[test]
    fn exclusivity_invariant() {
        let mut upper = LruCore::new(2);
        let mut lower = LruCore::new(2);
        for i in [1u64, 2, 3, 4, 1, 2, 3, 4, 2, 2, 1] {
            access(&mut upper, &mut lower, b(i));
            // No block may be resident at both layers.
            for blk in upper.blocks_mru_to_lru() {
                assert!(
                    !lower.contains(blk),
                    "block {blk:?} duplicated across layers"
                );
            }
        }
    }

    #[test]
    fn eviction_demotes_to_lower() {
        let mut upper = LruCore::new(1);
        let mut lower = LruCore::new(4);
        access(&mut upper, &mut lower, b(1)); // disk read, upper = {1}
        let out = access(&mut upper, &mut lower, b(2)); // evicts 1 → demoted
        assert_eq!(out, DemoteOutcome::DiskRead { demoted: true });
        assert!(lower.contains(b(1)), "victim must be demoted, not dropped");
        assert!(upper.contains(b(2)));
    }

    #[test]
    fn lower_hit_promotes_and_removes() {
        let mut upper = LruCore::new(1);
        let mut lower = LruCore::new(4);
        access(&mut upper, &mut lower, b(1));
        access(&mut upper, &mut lower, b(2)); // 1 demoted below
        let out = access(&mut upper, &mut lower, b(1)); // hit below
        assert!(matches!(out, DemoteOutcome::LowerHit { .. }));
        assert!(upper.contains(b(1)));
        assert!(
            !lower.contains(b(1)),
            "promoted block must leave the lower cache"
        );
        assert!(lower.contains(b(2)), "upper victim demoted during promote");
    }

    #[test]
    fn aggregate_behaves_like_combined_cache() {
        // Working set of 3 fits in upper(1)+lower(2) under DEMOTE but not
        // in either cache alone: after warm-up, cycling 1,2,3 always hits
        // somewhere except the cold pass.
        let mut upper = LruCore::new(1);
        let mut lower = LruCore::new(2);
        let trace = [1u64, 2, 3, 1, 2, 3, 1, 2, 3];
        let mut disk_reads = 0;
        for &i in &trace {
            if matches!(
                access(&mut upper, &mut lower, b(i)),
                DemoteOutcome::DiskRead { .. }
            ) {
                disk_reads += 1;
            }
        }
        assert_eq!(
            disk_reads, 3,
            "only the cold pass should reach disk, got {disk_reads}"
        );
    }

    #[test]
    fn upper_hit_costs_no_demotion() {
        let mut upper = LruCore::new(2);
        let mut lower = LruCore::new(2);
        access(&mut upper, &mut lower, b(1));
        assert_eq!(
            access(&mut upper, &mut lower, b(1)),
            DemoteOutcome::UpperHit
        );
    }
}
