//! Cache-hierarchy management policies.
//!
//! The paper evaluates its layout optimization under three managements of
//! the (I/O cache, storage cache) hierarchy:
//!
//! * [`PolicyKind::LruInclusive`] — the default of §5.1: every layer runs
//!   LRU and lower layers retain copies of blocks cached above them.
//! * [`PolicyKind::DemoteLru`] — Wong & Wilkes' DEMOTE with LRU arrays
//!   (§5.4, \[44\]): exclusive caching where client evictions are demoted to
//!   the storage cache.
//! * [`PolicyKind::Karma`] — Yadgar et al.'s KARMA (§5.4, \[47\]): exclusive
//!   caching driven by application hints that classify blocks into ranges
//!   and partition cache space across the hierarchy by marginal gain.
//!
//! The per-access walks live in [`crate::system`]; this module holds the
//! policy identifiers and KARMA's hint/allocation machinery.

pub mod demote;
pub mod karma;
pub mod mq;

/// Which hierarchy management scheme the simulated system runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Inclusive LRU at both layers (paper default).
    LruInclusive,
    /// DEMOTE-LRU exclusive caching \[44\].
    DemoteLru,
    /// KARMA hint-based exclusive partitioning \[47\].
    Karma,
    /// Multi-Queue at the storage layer, LRU at the I/O layer — the
    /// second-level scheme of the paper's citation \[50\]; an extension
    /// beyond the evaluated policies.
    MqSecondLevel,
}

impl PolicyKind {
    /// The policies of Fig. 7(h), in presentation order.
    pub fn all() -> [PolicyKind; 3] {
        [
            PolicyKind::LruInclusive,
            PolicyKind::Karma,
            PolicyKind::DemoteLru,
        ]
    }

    /// All policies including the MQ extension.
    pub fn extended() -> [PolicyKind; 4] {
        [
            PolicyKind::LruInclusive,
            PolicyKind::Karma,
            PolicyKind::DemoteLru,
            PolicyKind::MqSecondLevel,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::LruInclusive => "LRU",
            PolicyKind::DemoteLru => "DEMOTE-LRU",
            PolicyKind::Karma => "KARMA",
            PolicyKind::MqSecondLevel => "MQ",
        }
    }

    /// Parse a policy name: the lowercase env-var/wire spellings
    /// (`lru` | `demote` | `karma` | `mq`) and the display names both
    /// work. `None` for anything else.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "lru" | "LRU" => Some(PolicyKind::LruInclusive),
            "demote" | "DEMOTE-LRU" => Some(PolicyKind::DemoteLru),
            "karma" | "KARMA" => Some(PolicyKind::Karma),
            "mq" | "MQ" => Some(PolicyKind::MqSecondLevel),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = PolicyKind::all().iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 3);
        for i in 0..names.len() {
            for j in i + 1..names.len() {
                assert_ne!(names[i], names[j]);
            }
        }
    }
}
