//! MQ: the Multi-Queue replacement algorithm for second-level caches.
//!
//! Zhou, Philbin & Li (USENIX ATC'01 — the paper's citation \[50\]) observe
//! that second-level (storage) caches see the *misses* of the layer above,
//! whose reuse distances defeat plain LRU, and propose Multi-Queue: blocks
//! live in one of `m` LRU queues by access frequency (queue
//! `⌊log₂(freq)⌋`), promotion on hit, and eviction from the head of the
//! lowest non-empty queue. Our reproduction implements the queue structure
//! and frequency promotion; the lifetime-based demotion of idle blocks is
//! approximated by capping the frequency (a block cannot climb forever),
//! which keeps the structure O(1) per access and deterministic.
//!
//! MQ is an *extension* beyond the paper's evaluated policies: the paper's
//! §6.1 cites it as the canonical second-level scheme, and the `ablation`
//! binary reports how the layout optimization composes with it.

use crate::block::BlockAddr;
use crate::cache::{CacheStats, LruCore};
use std::collections::HashMap;

/// Number of frequency queues (`2^7` accesses saturate the top queue).
const NUM_QUEUES: usize = 8;

/// A multi-queue cache for second-level (storage) caches.
#[derive(Clone, Debug)]
pub struct MqCache {
    capacity: usize,
    queues: Vec<LruCore>,
    /// Resident blocks → (queue index, access count).
    meta: HashMap<BlockAddr, (usize, u32)>,
    stats: CacheStats,
}

fn queue_of(freq: u32) -> usize {
    ((32 - freq.leading_zeros()) as usize)
        .saturating_sub(1)
        .min(NUM_QUEUES - 1)
}

impl MqCache {
    /// An empty MQ cache of `capacity` blocks.
    pub fn new(capacity: usize) -> MqCache {
        assert!(capacity > 0, "MqCache: zero capacity");
        MqCache {
            capacity,
            // Each queue may transiently hold up to the full capacity.
            queues: (0..NUM_QUEUES).map(|_| LruCore::new(capacity)).collect(),
            meta: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Total resident blocks.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Residency check (no stats).
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.meta.contains_key(&block)
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Weighted lookup (see [`LruCore::access_weighted`]); on hit the
    /// block's frequency rises and it may be promoted to a higher queue.
    pub fn access_weighted(&mut self, block: BlockAddr, weight: u32) -> bool {
        self.stats.accesses += weight as u64;
        if let Some(&(q, freq)) = self.meta.get(&block) {
            self.stats.hits += weight as u64;
            let freq = freq.saturating_add(1).min(1 << (NUM_QUEUES - 1));
            let nq = queue_of(freq);
            if nq != q {
                self.queues[q].remove(block);
                self.queues[nq].insert(block);
            } else {
                self.queues[q].access(block);
                self.queues[q].reset_stats_keep();
            }
            self.meta.insert(block, (nq, freq));
            true
        } else {
            self.stats.hits += weight as u64 - 1;
            false
        }
    }

    /// Unweighted lookup.
    pub fn access(&mut self, block: BlockAddr) -> bool {
        self.access_weighted(block, 1)
    }

    /// Insert a (missed) block with frequency 1; evicts from the lowest
    /// non-empty queue when full. Returns the victim.
    pub fn insert(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        if self.contains(block) {
            return None;
        }
        let mut victim = None;
        if self.meta.len() == self.capacity {
            for q in &mut self.queues {
                if let Some(v) = q.pop_lru() {
                    self.meta.remove(&v);
                    victim = Some(v);
                    break;
                }
            }
        }
        self.queues[0].insert(block);
        self.meta.insert(block, (0, 1));
        victim
    }

    /// Drop every resident block (fault-injected cache flush), keeping the
    /// hit/miss counters. Returns the number of blocks invalidated.
    pub fn invalidate_all(&mut self) -> usize {
        let dropped = self.meta.len();
        for q in &mut self.queues {
            while q.pop_lru().is_some() {}
        }
        self.meta.clear();
        dropped
    }

    /// Remove a block if resident.
    pub fn remove(&mut self, block: BlockAddr) -> bool {
        if let Some((q, _)) = self.meta.remove(&block) {
            self.queues[q].remove(block);
            true
        } else {
            false
        }
    }
}

// LruCore's stats are bypassed inside MQ (MQ keeps its own); this tiny
// shim keeps the inner queues' counters from growing unbounded.
impl LruCore {
    pub(crate) fn reset_stats_keep(&mut self) {
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(0, i)
    }

    #[test]
    fn queue_index_is_log2() {
        assert_eq!(queue_of(1), 0);
        assert_eq!(queue_of(2), 1);
        assert_eq!(queue_of(3), 1);
        assert_eq!(queue_of(4), 2);
        assert_eq!(queue_of(128), 7);
        assert_eq!(queue_of(100_000), NUM_QUEUES - 1);
    }

    #[test]
    fn frequent_blocks_survive_scans() {
        // A hot block accessed many times survives a one-shot scan that
        // would evict it under plain LRU.
        let mut mq = MqCache::new(4);
        mq.insert(b(0));
        for _ in 0..8 {
            mq.access(b(0)); // climbs to a high queue
        }
        // Scan 6 cold blocks through the 4-slot cache.
        for i in 1..=6 {
            if !mq.access(b(i)) {
                mq.insert(b(i));
            }
        }
        assert!(mq.contains(b(0)), "hot block must survive the scan");

        // Control: plain LRU of the same size loses it.
        let mut lru = LruCore::new(4);
        lru.insert(b(0));
        for _ in 0..8 {
            lru.access(b(0));
        }
        for i in 1..=6 {
            if !lru.access(b(i)) {
                lru.insert(b(i));
            }
        }
        assert!(!lru.contains(b(0)), "LRU control must have evicted it");
    }

    #[test]
    fn capacity_respected() {
        let mut mq = MqCache::new(3);
        for i in 0..10 {
            mq.insert(b(i));
            assert!(mq.len() <= 3);
        }
    }

    #[test]
    fn eviction_prefers_low_queues() {
        let mut mq = MqCache::new(2);
        mq.insert(b(1));
        mq.access(b(1));
        mq.access(b(1)); // freq 3 → queue 1
        mq.insert(b(2)); // freq 1 → queue 0
        let victim = mq.insert(b(3));
        assert_eq!(victim, Some(b(2)), "low-frequency block evicted first");
        assert!(mq.contains(b(1)));
    }

    #[test]
    fn invalidate_all_drops_contents_keeps_stats() {
        let mut mq = MqCache::new(4);
        mq.insert(b(1));
        mq.insert(b(2));
        mq.access(b(1));
        let before = mq.stats();
        assert_eq!(mq.invalidate_all(), 2);
        assert!(mq.is_empty());
        assert!(!mq.contains(b(1)));
        assert_eq!(mq.stats(), before, "flush must not touch counters");
        // Still usable after the flush.
        mq.insert(b(3));
        assert!(mq.contains(b(3)));
    }

    #[test]
    fn remove_and_stats() {
        let mut mq = MqCache::new(2);
        assert!(!mq.access(b(1)));
        mq.insert(b(1));
        assert!(mq.access_weighted(b(1), 3));
        assert!(mq.remove(b(1)));
        assert!(!mq.remove(b(1)));
        let s = mq.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 3);
    }
}
