//! KARMA: hint-based exclusive multi-level cache partitioning.
//!
//! KARMA (Yadgar, Factor & Schuster, FAST'07) assumes the application
//! discloses its access pattern as *ranges* of blocks with known access
//! frequencies. Each cache level is partitioned among ranges by *marginal
//! gain* — hot, small ranges are pinned closest to the client; colder
//! ranges live lower; the coldest bypass caching entirely (READ-DISCARD).
//! Placement is exclusive: a range is cached at exactly one level.
//!
//! Our reproduction keeps KARMA's essential structure at per-file (=
//! per-array) granularity, which is precisely the hint a compiler can
//! produce: for each array, the number of distinct blocks and the number of
//! accesses. Allocation greedily assigns the ranges with the highest
//! accesses-per-block to the I/O layer until its aggregate capacity is
//! spent, then to the storage layer, and the remainder to no cache.
//!
//! The paper's observation that the layout optimization *increases*
//! KARMA's effectiveness ("more localized data accesses enable KARMA to
//! generate more accurate hints") emerges naturally here: the optimized
//! layout shrinks each array's per-thread block footprint, so more hot
//! ranges fit in the upper partitions.

use crate::block::FileId;
use crate::topology::Topology;
use std::collections::HashMap;

/// One hinted range: a whole file (disk-resident array).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeHint {
    /// The file this range covers.
    pub file: FileId,
    /// Number of distinct blocks in the range.
    pub num_blocks: u64,
    /// Total dynamic accesses expected to the range.
    pub accesses: u64,
}

impl RangeHint {
    /// Marginal gain of caching one block of this range: expected accesses
    /// per block. Compared as a rational (`accesses / num_blocks`) without
    /// floating point.
    fn gain_key(&self) -> (u64, u64) {
        (self.accesses, self.num_blocks.max(1))
    }
}

/// The application hints handed to KARMA before a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KarmaHints {
    /// Per-file ranges (whole-application view, used for the storage
    /// layer's allocation).
    pub ranges: Vec<RangeHint>,
    /// Per-I/O-node views: `group_ranges[g]` describes the blocks and
    /// accesses of each file as seen *through I/O node g*. Empty means
    /// "use the global ranges for every node". Localized layouts shrink
    /// these footprints, which is exactly how the paper's optimization
    /// makes KARMA's hints more effective (§5.4).
    pub group_ranges: Vec<Vec<RangeHint>>,
}

impl KarmaHints {
    /// Build hints from `(file, num_blocks, accesses)` triples.
    pub fn from_triples(triples: &[(FileId, u64, u64)]) -> KarmaHints {
        KarmaHints {
            ranges: triples
                .iter()
                .map(|&(file, num_blocks, accesses)| RangeHint {
                    file,
                    num_blocks,
                    accesses,
                })
                .collect(),
            group_ranges: Vec::new(),
        }
    }
}

/// The cache level a range is assigned to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KarmaLevel {
    /// Cached in the I/O-node caches.
    Io,
    /// Cached in the storage-node caches.
    Storage,
    /// Not cached anywhere (READ-DISCARD).
    Bypass,
}

/// The result of KARMA's partitioning decision.
#[derive(Clone, Debug, Default)]
pub struct KarmaAssignment {
    /// Files admitted into each I/O-node cache's partition.
    io_admitted: Vec<HashMap<FileId, bool>>,
    /// Fallback level for files not I/O-admitted at a node.
    level_of_file: HashMap<FileId, KarmaLevel>,
}

fn sort_by_gain(ranges: &mut [RangeHint]) {
    // Sort by marginal gain (accesses/num_blocks) descending; compare
    // a/b vs c/d as a*d vs c*b to stay exact. Ties break on FileId for
    // determinism.
    ranges.sort_by(|x, y| {
        let (ax, bx) = x.gain_key();
        let (ay, by) = y.gain_key();
        ((ay as u128) * (bx as u128))
            .cmp(&((ax as u128) * (by as u128)))
            .then(x.file.cmp(&y.file))
    });
}

impl KarmaAssignment {
    /// Partition the caches among the hinted ranges by decreasing
    /// marginal gain: each I/O-node cache is partitioned among the ranges
    /// *it* serves (per-group hints when provided), and the storage layer
    /// among the remaining ranges.
    pub fn allocate(hints: &KarmaHints, topo: &Topology) -> KarmaAssignment {
        // Per-I/O-node admission.
        let mut io_admitted: Vec<HashMap<FileId, bool>> = Vec::with_capacity(topo.io_nodes);
        for g in 0..topo.io_nodes {
            let mut ranges = if hints.group_ranges.len() == topo.io_nodes {
                hints.group_ranges[g].clone()
            } else {
                hints.ranges.clone()
            };
            sort_by_gain(&mut ranges);
            let mut left = topo.io_cache_blocks as i128;
            let mut admitted = HashMap::new();
            for r in &ranges {
                let sz = r.num_blocks as i128;
                if sz <= left {
                    left -= sz;
                    admitted.insert(r.file, true);
                }
            }
            io_admitted.push(admitted);
        }
        // Storage layer: global ranges not I/O-admitted everywhere compete
        // for the aggregate storage capacity.
        let mut ranges = hints.ranges.clone();
        sort_by_gain(&mut ranges);
        let mut storage_left = topo.total_storage_cache() as i128;
        let mut level_of_file = HashMap::new();
        for r in &ranges {
            let everywhere = io_admitted
                .iter()
                .all(|m| m.get(&r.file).copied().unwrap_or(false));
            if everywhere {
                level_of_file.insert(r.file, KarmaLevel::Io);
                continue;
            }
            let sz = r.num_blocks as i128;
            let level = if sz <= storage_left {
                storage_left -= sz;
                KarmaLevel::Storage
            } else {
                KarmaLevel::Bypass
            };
            level_of_file.insert(r.file, level);
        }
        KarmaAssignment {
            io_admitted,
            level_of_file,
        }
    }

    /// Level of `file` for requests arriving through I/O node `io_idx`.
    /// Unhinted files are cached at the I/O level (KARMA falls back to
    /// LRU-like behaviour without hints).
    pub fn level_for(&self, io_idx: usize, file: FileId) -> KarmaLevel {
        if let Some(m) = self.io_admitted.get(io_idx) {
            if m.get(&file).copied().unwrap_or(false) {
                return KarmaLevel::Io;
            }
        }
        if self.io_admitted.is_empty() {
            // No allocation installed at all: behave like plain I/O caching.
            return KarmaLevel::Io;
        }
        self.level_of_file
            .get(&file)
            .copied()
            .unwrap_or(KarmaLevel::Io)
    }

    /// Level assigned to `file` viewed from I/O node 0 (compatibility
    /// helper for tests).
    pub fn level_of(&self, file: FileId) -> KarmaLevel {
        self.level_for(0, file)
    }

    /// Number of ranges assigned to each level `(io, storage, bypass)`
    /// from the node-0 viewpoint.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        let files: std::collections::BTreeSet<FileId> = self
            .level_of_file
            .keys()
            .copied()
            .chain(self.io_admitted.iter().flat_map(|m| m.keys().copied()))
            .collect();
        for f in files {
            match self.level_for(0, f) {
                KarmaLevel::Io => c.0 += 1,
                KarmaLevel::Storage => c.1 += 1,
                KarmaLevel::Bypass => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        // total io cache = 2*8 = 16 blocks; storage = 1*16 = 16 blocks.
        Topology::tiny()
    }

    #[test]
    fn hot_small_ranges_go_high() {
        // tiny(): each I/O-node cache holds 8 blocks; storage aggregate 16.
        let hints = KarmaHints::from_triples(&[
            (0, 6, 1000), // gain ~167 → admitted at every I/O cache
            (1, 10, 100), // too big for an I/O cache → Storage (6 left after)
            (2, 10, 10),  // does not fit the remaining storage → Bypass
        ]);
        let asg = KarmaAssignment::allocate(&hints, &topo());
        assert_eq!(asg.level_of(0), KarmaLevel::Io);
        assert_eq!(asg.level_of(1), KarmaLevel::Storage);
        assert_eq!(asg.level_of(2), KarmaLevel::Bypass);
        assert_eq!(asg.census(), (1, 1, 1));
    }

    #[test]
    fn exact_fit_is_admitted() {
        let hints = KarmaHints::from_triples(&[(0, 8, 100)]);
        let asg = KarmaAssignment::allocate(&hints, &topo());
        assert_eq!(asg.level_of(0), KarmaLevel::Io);
    }

    #[test]
    fn gain_ordering_is_per_block_not_total() {
        // File 0: 100 accesses over 12 blocks (gain ~8.3) — too large for
        // an 8-block I/O cache anyway → Storage.
        // File 1: 90 accesses over 4 blocks (gain 22.5) → wins the I/O slot
        // even though its total accesses are lower.
        let hints = KarmaHints::from_triples(&[(0, 12, 100), (1, 4, 90)]);
        let asg = KarmaAssignment::allocate(&hints, &topo());
        assert_eq!(asg.level_of(1), KarmaLevel::Io);
        assert_eq!(asg.level_of(0), KarmaLevel::Storage);
    }

    #[test]
    fn unhinted_file_defaults_to_io() {
        let asg = KarmaAssignment::allocate(&KarmaHints::default(), &topo());
        assert_eq!(asg.level_of(42), KarmaLevel::Io);
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-gain files that each fill a whole I/O cache: the lower
        // FileId wins the partition, the other falls to storage.
        let hints = KarmaHints::from_triples(&[(1, 8, 100), (0, 8, 100)]);
        let asg = KarmaAssignment::allocate(&hints, &topo());
        assert_eq!(asg.level_of(0), KarmaLevel::Io);
        assert_eq!(asg.level_of(1), KarmaLevel::Storage);
    }

    #[test]
    fn per_group_hints_differ_between_nodes() {
        // Node 0 sees file 0 small (fits); node 1 sees it huge (does not).
        let mut hints = KarmaHints::from_triples(&[(0, 100, 1000)]);
        hints.group_ranges = vec![
            vec![RangeHint {
                file: 0,
                num_blocks: 4,
                accesses: 1000,
            }],
            vec![RangeHint {
                file: 0,
                num_blocks: 100,
                accesses: 1000,
            }],
        ];
        let asg = KarmaAssignment::allocate(&hints, &topo());
        assert_eq!(asg.level_for(0, 0), KarmaLevel::Io);
        assert_ne!(asg.level_for(1, 0), KarmaLevel::Io);
    }
}
