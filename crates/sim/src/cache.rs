//! The LRU cache core shared by all policies.
//!
//! [`LruCore`] is a fixed-capacity set of [`BlockAddr`]s with O(1) lookup,
//! promotion, insertion and eviction, implemented as a slab-backed
//! intrusive doubly-linked list (MRU at the head) indexed by a hash map —
//! or, for the small per-set cores a [`SetAssocCache`] is made of, by a
//! bitmask-guided linear scan that skips hashing altogether. The three
//! hierarchy policies (inclusive LRU, DEMOTE-LRU, KARMA) differ only in
//! *when* they insert/remove/demote — they all reuse this core.

use crate::block::BlockAddr;
use crate::fxhash::FxHashMap;

const NIL: usize = usize::MAX;

/// Capacity at or below which the core drops the hash map entirely and
/// finds blocks by scanning the slab under an occupancy bitmask. The
/// set-associative caches run 8-way sets; at that size a branch-free
/// scan of at most `capacity` slots beats computing a hash, and the
/// recency lists are untouched, so behavior is bit-identical.
const SMALL_CAP: usize = 64;

#[derive(Clone, Debug)]
struct Node {
    block: BlockAddr,
    prev: usize,
    next: usize,
}

/// Hit/miss counters for one cache (or one aggregated layer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups.
    pub accesses: u64,
    /// Number of lookups that found the block resident.
    pub hits: u64,
}

impl CacheStats {
    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss rate in [0, 1]; 0 for an idle cache.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Accumulate another counter into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
    }
}

/// A fixed-capacity LRU set of blocks.
#[derive(Clone, Debug)]
pub struct LruCore {
    capacity: usize,
    /// Block → slab index; unused (empty) when `capacity <= SMALL_CAP`.
    map: FxHashMap<BlockAddr, usize>,
    /// Small-mode occupancy bitmask over `nodes` (bit i ⇔ slot i live).
    occupied: u64,
    /// Small-mode copy of each slot's block, kept contiguous so lookups
    /// scan 16-byte keys instead of the pointer-laden `Node` slab.
    keys: Vec<BlockAddr>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // MRU
    tail: usize, // LRU
    stats: CacheStats,
}

impl LruCore {
    /// An empty cache holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> LruCore {
        assert!(capacity > 0, "LruCore: zero capacity");
        let map_slots = if capacity <= SMALL_CAP {
            0
        } else {
            capacity + 1
        };
        LruCore {
            capacity,
            map: FxHashMap::with_capacity_and_hasher(map_slots, Default::default()),
            occupied: 0,
            keys: Vec::new(),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn is_small(&self) -> bool {
        self.capacity <= SMALL_CAP
    }

    /// Slab index of `block` if resident.
    #[inline]
    fn lookup(&self, block: BlockAddr) -> Option<usize> {
        if self.is_small() {
            for (i, &k) in self.keys.iter().enumerate() {
                if k == block && (self.occupied >> i) & 1 == 1 {
                    return Some(i);
                }
            }
            None
        } else {
            self.map.get(&block).copied()
        }
    }

    /// Record that slab slot `idx` now holds `block`.
    #[inline]
    fn register(&mut self, block: BlockAddr, idx: usize) {
        if self.is_small() {
            self.occupied |= 1 << idx;
            if idx == self.keys.len() {
                self.keys.push(block);
            } else {
                self.keys[idx] = block;
            }
        } else {
            self.map.insert(block, idx);
        }
    }

    /// Record that slab slot `idx` (holding `block`) was vacated.
    #[inline]
    fn unregister(&mut self, block: BlockAddr, idx: usize) {
        if self.is_small() {
            self.occupied &= !(1 << idx);
        } else {
            self.map.remove(&block);
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident blocks.
    pub fn len(&self) -> usize {
        if self.is_small() {
            self.occupied.count_ones() as usize
        } else {
            self.map.len()
        }
    }

    /// Whether no block is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `block` is resident (does not touch recency or stats).
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.lookup(block).is_some()
    }

    /// Look up `block`, recording a hit or miss; on hit the block becomes
    /// MRU. Returns `true` on hit.
    pub fn access(&mut self, block: BlockAddr) -> bool {
        self.access_weighted(block, 1)
    }

    /// Look up `block` on behalf of `weight` coalesced element accesses.
    /// All `weight` accesses count as hits when the block is resident; on
    /// a miss, the first element access is the miss and the remaining
    /// `weight − 1` are served from the freshly fetched block (hits).
    /// Returns `true` when the block was resident.
    pub fn access_weighted(&mut self, block: BlockAddr, weight: u32) -> bool {
        debug_assert!(weight >= 1);
        self.stats.accesses += weight as u64;
        if let Some(idx) = self.lookup(block) {
            self.stats.hits += weight as u64;
            self.unlink(idx);
            self.push_front(idx);
            true
        } else {
            self.stats.hits += weight as u64 - 1;
            false
        }
    }

    /// Insert `block` as MRU (no stats recorded — insertion follows a miss
    /// already counted by [`access`](Self::access)). If the cache is full
    /// the LRU block is evicted and returned. Inserting a resident block
    /// just promotes it.
    pub fn insert(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        if let Some(idx) = self.lookup(block) {
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let evicted = if self.len() == self.capacity {
            self.pop_lru()
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    block,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    block,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.register(block, idx);
        self.push_front(idx);
        evicted
    }

    /// Insert `block` at the *LRU* end (used by DEMOTE-style placements
    /// where a block should be first in line for eviction). Returns the
    /// evicted block if the cache was full.
    pub fn insert_lru(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        if let Some(idx) = self.lookup(block) {
            // Already resident: move to LRU end.
            self.unlink(idx);
            self.push_back(idx);
            return None;
        }
        let evicted = if self.len() == self.capacity {
            self.pop_lru()
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    block,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    block,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.register(block, idx);
        self.push_back(idx);
        evicted
    }

    /// Insert a block the caller just observed missing — skips the
    /// residency probe [`insert`](Self::insert) pays. Only valid straight
    /// after a miss on this core with no intervening mutation.
    pub(crate) fn insert_absent(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        debug_assert!(
            self.lookup(block).is_none(),
            "insert_absent: block resident"
        );
        let evicted = if self.len() == self.capacity {
            self.pop_lru()
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    block,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    block,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.register(block, idx);
        self.push_front(idx);
        evicted
    }

    /// Remove `block` if resident; returns whether it was present.
    pub fn remove(&mut self, block: BlockAddr) -> bool {
        if let Some(idx) = self.lookup(block) {
            self.unregister(block, idx);
            self.unlink(idx);
            self.free.push(idx);
            true
        } else {
            false
        }
    }

    /// Evict and return the LRU block.
    pub fn pop_lru(&mut self) -> Option<BlockAddr> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let block = self.nodes[idx].block;
        self.unlink(idx);
        self.unregister(block, idx);
        self.free.push(idx);
        Some(block)
    }

    /// Counters for this cache.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters (contents retained) — used between warm-up and
    /// measurement phases.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Resident blocks from MRU to LRU (test helper; O(len)).
    pub fn blocks_mru_to_lru(&self) -> Vec<BlockAddr> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.nodes[cur].block);
            cur = self.nodes[cur].next;
        }
        out
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn push_back(&mut self, idx: usize) {
        self.nodes[idx].next = NIL;
        self.nodes[idx].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail].next = idx;
        }
        self.tail = idx;
        if self.head == NIL {
            self.head = idx;
        }
    }
}

/// A set-associative cache: `capacity / ways` hash-indexed sets, each an
/// LRU list of `ways` blocks.
///
/// Real storage caches index their block tables by address hash, so which
/// blocks conflict depends on the *file layout* — this is precisely the
/// effect the paper's hierarchy-aware pattern construction exploits (and
/// why targeting a single layer loses part of the benefit, Fig. 7(f)).
/// The set index preserves within-file block adjacency (consecutive blocks
/// fall into consecutive sets) and offsets different files by a prime
/// multiplier.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    sets: Vec<LruCore>,
    ways: usize,
    set_mod: FastMod,
}

/// Exact `x % n` without a hardware divide: Lemire's fastmod, widened to
/// 64-bit operands through 128-bit arithmetic. The set index is computed
/// on every simulated request and `n` (the set count) is a runtime value,
/// so the compiler cannot strength-reduce the modulo itself.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FastMod {
    n: u64,
    /// ceil(2^128 / n), wrapped to 0 for n = 1 (where the remainder is 0).
    m: u128,
}

impl FastMod {
    pub(crate) fn new(n: u64) -> FastMod {
        debug_assert!(n > 0, "FastMod: zero modulus");
        FastMod {
            n,
            m: (u128::MAX / n as u128).wrapping_add(1),
        }
    }

    #[inline]
    pub(crate) fn rem(&self, x: u64) -> u64 {
        let low = self.m.wrapping_mul(x as u128);
        // High 128 bits of `low × n`, assembled from 64-bit halves.
        let (ah, al) = ((low >> 64) as u64 as u128, low as u64 as u128);
        let n = self.n as u128;
        ((ah * n + ((al * n) >> 64)) >> 64) as u64
    }
}

/// The `(num_sets, ways)` geometry [`SetAssocCache::new`] builds for a
/// nominal `(capacity, ways)` pair, shared with the stack-distance sweep
/// engine so both derive identical set structures.
pub(crate) fn set_geometry(capacity: usize, ways: usize) -> (usize, usize) {
    assert!(
        capacity > 0 && ways > 0,
        "SetAssocCache: zero capacity/ways"
    );
    let ways = ways.min(capacity);
    let num_sets = (capacity / ways).max(1);
    (num_sets, ways)
}

/// The set-index hash of a block (before the modulo), shared with the
/// stack-distance sweep engine: within-file adjacency preserved, files
/// offset by a prime multiplier.
#[inline]
pub(crate) fn set_hash(block: BlockAddr) -> u64 {
    block.index + block.file as u64 * 7919
}

impl SetAssocCache {
    /// A cache of `capacity` blocks organized as `capacity / ways` sets of
    /// `ways` blocks. `ways >= capacity` degenerates to fully-associative.
    pub fn new(capacity: usize, ways: usize) -> SetAssocCache {
        let (num_sets, ways) = set_geometry(capacity, ways);
        SetAssocCache {
            sets: (0..num_sets).map(|_| LruCore::new(ways)).collect(),
            ways,
            set_mod: FastMod::new(num_sets as u64),
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        self.set_mod.rem(set_hash(block)) as usize
    }

    /// Weighted lookup; see [`LruCore::access_weighted`].
    pub fn access_weighted(&mut self, block: BlockAddr, weight: u32) -> bool {
        let s = self.set_of(block);
        self.sets[s].access_weighted(block, weight)
    }

    /// Unweighted lookup.
    pub fn access(&mut self, block: BlockAddr) -> bool {
        self.access_weighted(block, 1)
    }

    /// Insert at MRU of the block's set; returns the set's LRU victim if
    /// the set was full.
    pub fn insert(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let s = self.set_of(block);
        self.sets[s].insert(block)
    }

    /// Insert a block that just missed in this cache (see
    /// [`LruCore::insert_absent`]).
    pub(crate) fn insert_absent(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let s = self.set_of(block);
        self.sets[s].insert_absent(block)
    }

    /// Insert at the LRU end of the block's set.
    pub fn insert_lru(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let s = self.set_of(block);
        self.sets[s].insert_lru(block)
    }

    /// Remove a block if resident.
    pub fn remove(&mut self, block: BlockAddr) -> bool {
        let s = self.set_of(block);
        self.sets[s].remove(block)
    }

    /// Residency check (no stats).
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.sets[self.set_of(block)].contains(block)
    }

    /// Total resident blocks.
    pub fn len(&self) -> usize {
        self.sets.iter().map(LruCore::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(LruCore::is_empty)
    }

    /// Aggregated counters over all sets.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for set in &self.sets {
            s.merge(&set.stats());
        }
        s
    }

    /// Resident blocks per set (`result[s]` = occupancy of set `s`), for
    /// end-of-run occupancy snapshots.
    pub fn set_occupancies(&self) -> Vec<u32> {
        self.sets.iter().map(|s| s.len() as u32).collect()
    }

    /// Drop every resident block, keeping the hit/miss counters (a fault
    /// event: a node restart or forced cache flush loses contents, not
    /// statistics). Returns the number of blocks invalidated.
    pub fn invalidate_all(&mut self) -> usize {
        let mut dropped = 0;
        for set in &mut self.sets {
            while set.pop_lru().is_some() {
                dropped += 1;
            }
        }
        dropped
    }

    /// Drop the resident blocks of every set whose index has the given
    /// parity — a degraded-mode "shrink" that transiently halves the
    /// effective capacity. Returns the number of blocks invalidated.
    pub fn invalidate_half(&mut self, parity: usize) -> usize {
        let mut dropped = 0;
        for (i, set) in self.sets.iter_mut().enumerate() {
            if i % 2 == parity % 2 {
                while set.pop_lru().is_some() {
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// Resident blocks (test helper).
    pub fn blocks(&self) -> Vec<BlockAddr> {
        self.sets
            .iter()
            .flat_map(LruCore::blocks_mru_to_lru)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(0, i)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = LruCore::new(2);
        assert!(!c.access(b(1)));
        c.insert(b(1));
        assert!(c.access(b(1)));
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 1);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_access_accounting() {
        let mut c = LruCore::new(2);
        // Cold block, 4 coalesced elements: 1 miss + 3 buffered hits.
        assert!(!c.access_weighted(b(1), 4));
        c.insert(b(1));
        // Warm block, 4 elements: all hits.
        assert!(c.access_weighted(b(1), 4));
        let s = c.stats();
        assert_eq!(s.accesses, 8);
        assert_eq!(s.hits, 7);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = LruCore::new(2);
        c.insert(b(1));
        c.insert(b(2));
        let evicted = c.insert(b(3));
        assert_eq!(evicted, Some(b(1)), "LRU block must be evicted");
        assert!(c.contains(b(2)));
        assert!(c.contains(b(3)));
    }

    #[test]
    fn access_promotes_to_mru() {
        let mut c = LruCore::new(2);
        c.insert(b(1));
        c.insert(b(2));
        c.access(b(1)); // 1 becomes MRU, 2 is now LRU
        let evicted = c.insert(b(3));
        assert_eq!(evicted, Some(b(2)));
    }

    #[test]
    fn insert_lru_is_first_evicted() {
        let mut c = LruCore::new(2);
        c.insert(b(1));
        c.insert_lru(b(2));
        let evicted = c.insert(b(3));
        assert_eq!(evicted, Some(b(2)), "LRU-inserted block evicted first");
    }

    #[test]
    fn insert_resident_promotes() {
        let mut c = LruCore::new(2);
        c.insert(b(1));
        c.insert(b(2));
        assert_eq!(c.insert(b(1)), None);
        assert_eq!(c.insert(b(3)), Some(b(2)));
    }

    #[test]
    fn remove_and_reuse_slot() {
        let mut c = LruCore::new(2);
        c.insert(b(1));
        assert!(c.remove(b(1)));
        assert!(!c.remove(b(1)));
        assert_eq!(c.len(), 0);
        c.insert(b(2));
        c.insert(b(3));
        assert_eq!(c.len(), 2);
        assert!(c.contains(b(2)) && c.contains(b(3)));
    }

    #[test]
    fn pop_lru_drains_in_order() {
        let mut c = LruCore::new(3);
        c.insert(b(1));
        c.insert(b(2));
        c.insert(b(3));
        assert_eq!(c.pop_lru(), Some(b(1)));
        assert_eq!(c.pop_lru(), Some(b(2)));
        assert_eq!(c.pop_lru(), Some(b(3)));
        assert_eq!(c.pop_lru(), None);
    }

    #[test]
    fn mru_to_lru_listing() {
        let mut c = LruCore::new(3);
        c.insert(b(1));
        c.insert(b(2));
        c.insert(b(3));
        c.access(b(1));
        assert_eq!(c.blocks_mru_to_lru(), vec![b(1), b(3), b(2)]);
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCore::new(1);
        c.insert(b(1));
        assert_eq!(c.insert(b(2)), Some(b(1)));
        assert!(c.contains(b(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = LruCore::new(4);
        for i in 0..100 {
            c.access(b(i % 7));
            c.insert(b(i % 7));
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn lru_stack_property() {
        // A larger LRU cache's hits are a superset of a smaller one's on
        // the same trace (classic inclusion property).
        let trace: Vec<u64> = vec![1, 2, 3, 1, 4, 5, 2, 1, 3, 3, 6, 1, 2, 7, 1];
        let mut small = LruCore::new(2);
        let mut large = LruCore::new(4);
        for &t in &trace {
            let hs = small.access(b(t));
            let hl = large.access(b(t));
            assert!(!hs || hl, "small cache hit where large missed (block {t})");
            small.insert(b(t));
            large.insert(b(t));
        }
        assert!(large.stats().hits >= small.stats().hits);
    }

    /// Naive LRU oracle: both the bitmask mode (capacity ≤ 64) and the
    /// hash-map mode (capacity > 64) must match it move for move.
    fn oracle_check(capacity: usize) {
        let mut core = LruCore::new(capacity);
        let mut oracle: Vec<BlockAddr> = Vec::new(); // MRU first
        let mut x: u64 = 0x9E37_79B9;
        for step in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let blk = b(x % (capacity as u64 * 2));
            let hit = core.access(blk);
            assert_eq!(hit, oracle.contains(&blk), "cap {capacity} step {step}");
            if let Some(p) = oracle.iter().position(|&o| o == blk) {
                oracle.remove(p);
            }
            oracle.insert(0, blk);
            let evicted = core.insert(blk);
            let expect = if oracle.len() > capacity {
                oracle.pop()
            } else {
                None
            };
            assert_eq!(evicted, expect, "cap {capacity} step {step}");
            assert_eq!(core.len(), oracle.len(), "cap {capacity} step {step}");
        }
        assert_eq!(core.blocks_mru_to_lru(), oracle);
    }

    #[test]
    fn fastmod_matches_hardware_modulo() {
        let mut x: u64 = 0x0123_4567_89AB_CDEF;
        for n in [
            1u64,
            2,
            3,
            4,
            5,
            7,
            8,
            12,
            13,
            24,
            63,
            64,
            96,
            1_000_003,
            u64::MAX,
        ] {
            let fm = FastMod::new(n);
            for edge in [0, 1, n - 1, n, n.wrapping_add(1), u64::MAX - 1, u64::MAX] {
                assert_eq!(fm.rem(edge), edge % n, "n={n} x={edge}");
            }
            for _ in 0..2000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                assert_eq!(fm.rem(x), x % n, "n={n} x={x}");
            }
        }
    }

    #[test]
    fn insert_absent_matches_insert_after_miss() {
        for capacity in [4usize, 100] {
            let mut a = LruCore::new(capacity);
            let mut bb = LruCore::new(capacity);
            let mut x: u64 = 99;
            for _ in 0..3000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let blk = b(x % (capacity as u64 * 2));
                let ha = a.access(blk);
                let hb = bb.access(blk);
                assert_eq!(ha, hb);
                if !ha {
                    assert_eq!(a.insert(blk), bb.insert_absent(blk));
                }
            }
            assert_eq!(a.blocks_mru_to_lru(), bb.blocks_mru_to_lru());
            assert_eq!(a.stats(), bb.stats());
        }
    }

    #[test]
    fn small_mode_matches_lru_oracle() {
        oracle_check(8); // bitmask mode
        oracle_check(64); // bitmask mode, full mask width
    }

    #[test]
    fn map_mode_matches_lru_oracle() {
        oracle_check(65); // smallest hash-map-mode capacity
        oracle_check(100);
    }

    #[test]
    fn set_assoc_single_set_is_fully_associative() {
        let mut sa = SetAssocCache::new(4, 8); // ways clamped to 4 → 1 set
        assert_eq!(sa.num_sets(), 1);
        for i in 0..4 {
            sa.insert(b(i));
        }
        assert!(sa.access(b(0)));
        assert_eq!(sa.insert(b(9)), Some(b(1)), "global LRU evicted");
    }

    #[test]
    fn set_assoc_conflicts_within_set() {
        // 4 sets × 2 ways: blocks 0, 4, 8 share set 0; inserting three
        // evicts the set-LRU even though other sets are empty.
        let mut sa = SetAssocCache::new(8, 2);
        assert_eq!(sa.num_sets(), 4);
        sa.insert(b(0));
        sa.insert(b(4));
        let evicted = sa.insert(b(8));
        assert_eq!(evicted, Some(b(0)), "set conflict must evict");
        assert_eq!(sa.len(), 2);
    }

    #[test]
    fn set_assoc_consecutive_blocks_spread() {
        let mut sa = SetAssocCache::new(8, 2);
        for i in 0..8 {
            assert_eq!(
                sa.insert(b(i)),
                None,
                "consecutive blocks must not conflict"
            );
        }
        assert_eq!(sa.len(), 8);
    }

    #[test]
    fn set_assoc_files_are_offset() {
        let sa = SetAssocCache::new(8, 2);
        // Same index in different files should usually land in different
        // sets (prime multiplier).
        let a = BlockAddr::new(0, 0);
        let c = BlockAddr::new(1, 0);
        assert_ne!(sa.set_of(a), sa.set_of(c));
    }

    #[test]
    fn set_assoc_stats_aggregate() {
        let mut sa = SetAssocCache::new(8, 2);
        sa.access(b(0));
        sa.insert(b(0));
        sa.access(b(0));
        let st = sa.stats();
        assert_eq!(st.accesses, 2);
        assert_eq!(st.hits, 1);
    }
}
