//! Property tests of the polyhedral IR: affine access algebra, space
//! linearization, and weight accounting.

use flo_linalg::IMat;
use flo_polyhedral::{AffineAccess, DataSpace, IterSpace, ProgramBuilder};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = IMat> {
    proptest::collection::vec(-3i64..=3, rows * cols)
        .prop_map(move |v| IMat::from_vec(rows, cols, v))
}

proptest! {
    /// `eval` and `eval_into` agree, and transformation composes:
    /// `transformed(D).eval(i) == D · eval(i)`.
    #[test]
    fn access_algebra(
        q in small_matrix(2, 3),
        offset in proptest::collection::vec(-3i64..=3, 2),
        d in small_matrix(2, 2),
        i in proptest::collection::vec(-5i64..=5, 3),
    ) {
        let acc = AffineAccess::new(q, offset);
        let mut buf = vec![0i64; 2];
        acc.eval_into(&i, &mut buf);
        prop_assert_eq!(&buf, &acc.eval(&i));
        let transformed = acc.transformed(&d);
        prop_assert_eq!(transformed.eval(&i), d.mul_vec(&acc.eval(&i)));
    }

    /// Row-major linearization is a bijection onto [0, elements).
    #[test]
    fn linearize_bijection(extents in proptest::collection::vec(1i64..6, 1..4)) {
        let space = DataSpace::new(extents);
        let mut seen = vec![false; space.num_elements() as usize];
        // Walk all elements via delinearize and check the roundtrip.
        for off in 0..space.num_elements() {
            let a = space.delinearize(off);
            prop_assert!(space.contains(&a));
            prop_assert_eq!(space.linearize(&a), off);
            prop_assert!(!seen[off as usize]);
            seen[off as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Iteration spaces visit exactly `total_iterations` distinct points.
    #[test]
    fn iteration_count(lower in proptest::collection::vec(-3i64..=0, 1..3), widths in proptest::collection::vec(1i64..5, 1..3)) {
        prop_assume!(lower.len() == widths.len());
        let upper: Vec<i64> = lower.iter().zip(&widths).map(|(l, w)| l + w).collect();
        let space = IterSpace::new(lower, upper);
        let points: Vec<Vec<i64>> = space.iter().collect();
        prop_assert_eq!(points.len() as i64, space.total_iterations());
        let mut dedup = points.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), points.len());
        for p in &points {
            prop_assert!(space.contains(p));
        }
    }

    /// Reference weights accumulate per distinct matrix: `k` references
    /// sharing `Q` in an `n`-iteration nest weigh `k·n` (Eq. 5).
    #[test]
    fn weights_accumulate(reps in 1usize..5, n in 2i64..8) {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[n, n]);
        let mut nest = b.nest(&[n, n]);
        for _ in 0..reps {
            nest = nest.read(a, &[&[1, 0], &[0, 1]]);
        }
        nest.done();
        let p = b.build();
        let profile = p.access_profile(a);
        prop_assert_eq!(profile.weighted_matrices.len(), 1);
        prop_assert_eq!(profile.weighted_matrices[0].1, reps as i64 * n * n);
        prop_assert_eq!(profile.total_accesses, reps as i64 * n * n);
    }
}
