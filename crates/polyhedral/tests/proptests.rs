//! Property tests of the polyhedral IR: affine access algebra, space
//! linearization, and weight accounting.
//!
//! Deterministic SplitMix64 case generation replaces `proptest`
//! (unavailable offline); failures carry a case index for replay.

use flo_linalg::{IMat, SplitMix64};
use flo_polyhedral::{AccessCursor, AffineAccess, DataSpace, IterSpace, ProgramBuilder};

fn small_matrix(rng: &mut SplitMix64, rows: usize, cols: usize) -> IMat {
    let v = (0..rows * cols).map(|_| rng.range_i64(-3, 3)).collect();
    IMat::from_vec(rows, cols, v)
}

/// `eval` and `eval_into` agree, and transformation composes:
/// `transformed(D).eval(i) == D · eval(i)`.
#[test]
fn access_algebra() {
    let mut rng = SplitMix64::new(0xACCE55);
    for case in 0..300 {
        let q = small_matrix(&mut rng, 2, 3);
        let offset: Vec<i64> = (0..2).map(|_| rng.range_i64(-3, 3)).collect();
        let d = small_matrix(&mut rng, 2, 2);
        let i: Vec<i64> = (0..3).map(|_| rng.range_i64(-5, 5)).collect();
        let acc = AffineAccess::new(q, offset);
        let mut buf = vec![0i64; 2];
        acc.eval_into(&i, &mut buf);
        assert_eq!(&buf, &acc.eval(&i), "case {case}");
        let transformed = acc.transformed(&d);
        assert_eq!(
            transformed.eval(&i),
            d.mul_vec(&acc.eval(&i)),
            "case {case}"
        );
    }
}

/// Row-major linearization is a bijection onto [0, elements).
#[test]
fn linearize_bijection() {
    let mut rng = SplitMix64::new(0xB17);
    for case in 0..200 {
        let dims = rng.range_usize(1, 3);
        let extents: Vec<i64> = (0..dims).map(|_| rng.range_i64(1, 5)).collect();
        let space = DataSpace::new(extents);
        let mut seen = vec![false; space.num_elements() as usize];
        // Walk all elements via delinearize and check the roundtrip.
        for off in 0..space.num_elements() {
            let a = space.delinearize(off);
            assert!(space.contains(&a), "case {case}");
            assert_eq!(space.linearize(&a), off, "case {case}");
            assert!(!seen[off as usize], "case {case}");
            seen[off as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "case {case}");
    }
}

/// Iteration spaces visit exactly `total_iterations` distinct points.
#[test]
fn iteration_count() {
    let mut rng = SplitMix64::new(0x17E);
    for case in 0..200 {
        let dims = rng.range_usize(1, 2);
        let lower: Vec<i64> = (0..dims).map(|_| rng.range_i64(-3, 0)).collect();
        let widths: Vec<i64> = (0..dims).map(|_| rng.range_i64(1, 4)).collect();
        let upper: Vec<i64> = lower.iter().zip(&widths).map(|(l, w)| l + w).collect();
        let space = IterSpace::new(lower, upper);
        let points: Vec<Vec<i64>> = space.iter().collect();
        assert_eq!(points.len() as i64, space.total_iterations(), "case {case}");
        let mut dedup = points.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), points.len(), "case {case}");
        for p in &points {
            assert!(space.contains(p), "case {case}");
        }
    }
}

/// Incremental cursor stepping reproduces `eval_into` at every point of
/// a random iteration space, for random access matrices, offsets, and
/// projection strides — the invariant the fast trace generator rests on.
#[test]
fn cursor_stepping_matches_eval_into() {
    let mut rng = SplitMix64::new(0xC0A5E);
    for case in 0..150 {
        let rank = rng.range_usize(1, 3);
        let rows = rng.range_usize(1, 3);
        let lower: Vec<i64> = (0..rank).map(|_| rng.range_i64(-4, 4)).collect();
        let widths: Vec<i64> = (0..rank).map(|_| rng.range_i64(1, 5)).collect();
        let upper: Vec<i64> = lower.iter().zip(&widths).map(|(l, w)| l + w).collect();
        let space = IterSpace::new(lower, upper);
        let q = small_matrix(&mut rng, rows, rank);
        let offset: Vec<i64> = (0..rows).map(|_| rng.range_i64(-3, 3)).collect();
        let acc = AffineAccess::new(q, offset);
        let strides: Vec<i64> = (0..rows).map(|_| rng.range_i64(-8, 8)).collect();

        let mut cursor = AccessCursor::with_projection(&acc, &space, &strides);
        let mut buf = vec![0i64; rows];
        for (step, i) in space.iter().enumerate() {
            assert_eq!(cursor.iteration(), &i[..], "case {case} step {step}");
            acc.eval_into(&i, &mut buf);
            assert_eq!(cursor.element(), &buf[..], "case {case} step {step}");
            let dot: i64 = strides.iter().zip(&buf).map(|(s, a)| s * a).sum();
            assert_eq!(cursor.projected(), dot, "case {case} step {step}");
            cursor.advance();
        }
        assert!(cursor.is_done(), "case {case}");
    }
}

/// `skip_innermost` lands on the same state as repeated `advance`, and
/// `step_count` always counts the remaining innermost segment.
#[test]
fn cursor_skips_match_single_steps() {
    let mut rng = SplitMix64::new(0x5C1B);
    for case in 0..150 {
        let rank = rng.range_usize(1, 3);
        let rows = rng.range_usize(1, 2);
        let extents: Vec<i64> = (0..rank).map(|_| rng.range_i64(2, 6)).collect();
        let space = IterSpace::from_extents(&extents);
        let acc = AffineAccess::new(
            small_matrix(&mut rng, rows, rank),
            (0..rows).map(|_| rng.range_i64(-2, 2)).collect(),
        );
        let mut skipper = AccessCursor::new(&acc, &space);
        let mut stepper = AccessCursor::new(&acc, &space);
        while !skipper.is_done() {
            let remaining = skipper.step_count();
            assert!(remaining >= 1, "case {case}");
            let jump = rng.range_i64(0, remaining - 1);
            skipper.skip_innermost(jump);
            for _ in 0..jump {
                stepper.advance();
            }
            assert_eq!(skipper.iteration(), stepper.iteration(), "case {case}");
            assert_eq!(skipper.element(), stepper.element(), "case {case}");
            assert_eq!(skipper.step_count(), stepper.step_count(), "case {case}");
            skipper.advance();
            stepper.advance();
        }
        assert!(stepper.is_done(), "case {case}");
    }
}

/// Reference weights accumulate per distinct matrix: `k` references
/// sharing `Q` in an `n`-iteration nest weigh `k·n` (Eq. 5).
#[test]
fn weights_accumulate() {
    let mut rng = SplitMix64::new(0xE05);
    for case in 0..50 {
        let reps = rng.range_usize(1, 4);
        let n = rng.range_i64(2, 7);
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[n, n]);
        let mut nest = b.nest(&[n, n]);
        for _ in 0..reps {
            nest = nest.read(a, &[&[1, 0], &[0, 1]]);
        }
        nest.done();
        let p = b.build();
        let profile = p.access_profile(a);
        assert_eq!(profile.weighted_matrices.len(), 1, "case {case}");
        assert_eq!(
            profile.weighted_matrices[0].1,
            reps as i64 * n * n,
            "case {case}"
        );
        assert_eq!(profile.total_accesses, reps as i64 * n * n, "case {case}");
    }
}
