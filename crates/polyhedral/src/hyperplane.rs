//! Hyperplanes and the selector matrices of Step I.
//!
//! A hyperplane family in an `x`-dimensional space is given by a normal
//! vector `g` (the *hyperplane vector*); members share `g` and differ in the
//! constant `c` of `g·b = c`. The paper's parallelization uses the unit
//! iteration hyperplane `h_I = e_u`, and Step I seeks a unit data hyperplane
//! `h_A = e_v` in the *transformed* data space.

use flo_linalg::IMat;

/// A single hyperplane `normal · b = c`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Hyperplane {
    /// The hyperplane (normal) vector `g`.
    pub normal: Vec<i64>,
    /// The hyperplane constant `c`.
    pub c: i64,
}

impl Hyperplane {
    /// Construct a hyperplane.
    pub fn new(normal: Vec<i64>, c: i64) -> Hyperplane {
        assert!(normal.iter().any(|&g| g != 0), "Hyperplane: zero normal");
        Hyperplane { normal, c }
    }

    /// Whether point `b` lies on the hyperplane.
    pub fn contains(&self, b: &[i64]) -> bool {
        flo_linalg::dot(&self.normal, b) == self.c
    }

    /// The member of this family through point `b`.
    pub fn through(normal: Vec<i64>, b: &[i64]) -> Hyperplane {
        let c = flo_linalg::dot(&normal, b);
        Hyperplane::new(normal, c)
    }
}

/// The unit hyperplane vector `(0, …, 0, 1, 0, …, 0)` of length `n` with the
/// `1` at (0-indexed) position `u` — the paper's `h_I` / `h_A`.
pub fn unit_hyperplane(n: usize, u: usize) -> Vec<i64> {
    assert!(u < n, "unit_hyperplane: u out of range");
    let mut h = vec![0; n];
    h[u] = 1;
    h
}

/// The matrix `E_u`: the `n × n` identity with row `u` deleted, giving an
/// `(n-1) × n` matrix whose rows span `{Δi : h_I · Δi = 0}` — every
/// difference of two iterations on the same iteration hyperplane.
pub fn e_u_matrix(n: usize, u: usize) -> IMat {
    assert!(u < n, "e_u_matrix: u out of range");
    IMat::identity(n).delete_row(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flo_linalg::dot;

    #[test]
    fn unit_vectors() {
        assert_eq!(unit_hyperplane(3, 0), vec![1, 0, 0]);
        assert_eq!(unit_hyperplane(3, 2), vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "u out of range")]
    fn unit_out_of_range() {
        unit_hyperplane(2, 2);
    }

    #[test]
    fn e_u_rows_annihilated_by_h() {
        for n in 1..=4 {
            for u in 0..n {
                let h = unit_hyperplane(n, u);
                let e = e_u_matrix(n, u);
                assert_eq!(e.rows(), n - 1);
                assert_eq!(e.cols(), n);
                for r in e.rows_iter() {
                    assert_eq!(dot(&h, r), 0, "h_I · E_u row != 0 (n={n}, u={u})");
                }
            }
        }
    }

    #[test]
    fn e_u_spans_orthogonal_complement() {
        // rank(E_u) = n - 1, so its rows span the full complement of e_u.
        let e = e_u_matrix(4, 2);
        assert_eq!(flo_linalg::rank(&e), 3);
    }

    #[test]
    fn hyperplane_membership() {
        let h = Hyperplane::new(vec![1, -1], 0);
        assert!(h.contains(&[3, 3]));
        assert!(!h.contains(&[3, 4]));
    }

    #[test]
    fn hyperplane_through_point() {
        let h = Hyperplane::through(vec![2, 1], &[3, 4]);
        assert_eq!(h.c, 10);
        assert!(h.contains(&[3, 4]));
        assert!(h.contains(&[0, 10]));
    }

    #[test]
    #[should_panic(expected = "zero normal")]
    fn zero_normal_rejected() {
        Hyperplane::new(vec![0, 0], 1);
    }
}
