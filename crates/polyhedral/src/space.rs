//! Iteration and data spaces.
//!
//! Both spaces are rectangular boxes (the paper's evaluation kernels all
//! have loop bounds that are constants or loop-invariant parameters, and the
//! polyhedral machinery of Step I only uses the *linear part* of accesses,
//! so boxes capture everything the algorithms need).

/// An `n`-dimensional iteration space: `lower[k] <= i_k < upper[k]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IterSpace {
    lower: Vec<i64>,
    upper: Vec<i64>,
}

impl IterSpace {
    /// Box with the given inclusive lower and exclusive upper bounds.
    pub fn new(lower: Vec<i64>, upper: Vec<i64>) -> IterSpace {
        assert_eq!(lower.len(), upper.len(), "IterSpace: bound rank mismatch");
        assert!(
            lower.iter().zip(&upper).all(|(l, u)| l < u),
            "IterSpace: empty dimension (lower >= upper)"
        );
        IterSpace { lower, upper }
    }

    /// Box `0 <= i_k < extents[k]`.
    pub fn from_extents(extents: &[i64]) -> IterSpace {
        IterSpace::new(vec![0; extents.len()], extents.to_vec())
    }

    /// Number of loop levels `n`.
    pub fn rank(&self) -> usize {
        self.lower.len()
    }

    /// Inclusive lower bound of dimension `k`.
    pub fn lower(&self, k: usize) -> i64 {
        self.lower[k]
    }

    /// Exclusive upper bound of dimension `k`.
    pub fn upper(&self, k: usize) -> i64 {
        self.upper[k]
    }

    /// Trip count of loop `k`.
    pub fn trip_count(&self, k: usize) -> i64 {
        self.upper[k] - self.lower[k]
    }

    /// Product of all trip counts = total number of iterations.
    pub fn total_iterations(&self) -> i64 {
        (0..self.rank()).map(|k| self.trip_count(k)).product()
    }

    /// Whether `i` lies inside the space.
    pub fn contains(&self, i: &[i64]) -> bool {
        i.len() == self.rank()
            && i.iter()
                .enumerate()
                .all(|(k, &v)| v >= self.lower[k] && v < self.upper[k])
    }

    /// Lexicographic iterator over all iteration vectors. Intended for
    /// tests and small spaces; the simulator walks spaces incrementally
    /// instead of materializing them.
    pub fn iter(&self) -> IterSpaceIter<'_> {
        IterSpaceIter {
            space: self,
            cur: Some(self.lower.clone()),
        }
    }
}

/// Lexicographic iterator over an [`IterSpace`].
pub struct IterSpaceIter<'a> {
    space: &'a IterSpace,
    cur: Option<Vec<i64>>,
}

impl Iterator for IterSpaceIter<'_> {
    type Item = Vec<i64>;
    fn next(&mut self) -> Option<Vec<i64>> {
        let cur = self.cur.take()?;
        let mut next = cur.clone();
        // Increment like an odometer, innermost dimension fastest.
        for k in (0..self.space.rank()).rev() {
            next[k] += 1;
            if next[k] < self.space.upper(k) {
                self.cur = Some(next);
                return Some(cur);
            }
            next[k] = self.space.lower(k);
        }
        // Wrapped past the last vector.
        self.cur = None;
        Some(cur)
    }
}

/// An `m`-dimensional data space: `0 <= a_k < extents[k]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataSpace {
    extents: Vec<i64>,
}

impl DataSpace {
    /// Data space with the given per-dimension extents (all positive).
    pub fn new(extents: Vec<i64>) -> DataSpace {
        assert!(!extents.is_empty(), "DataSpace: zero-rank array");
        assert!(
            extents.iter().all(|&e| e > 0),
            "DataSpace: non-positive extent"
        );
        DataSpace { extents }
    }

    /// Array rank `m`.
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Extent of dimension `k`.
    pub fn extent(&self, k: usize) -> i64 {
        self.extents[k]
    }

    /// All extents.
    pub fn extents(&self) -> &[i64] {
        &self.extents
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> i64 {
        self.extents.iter().product()
    }

    /// Whether `a` is a valid element index vector.
    pub fn contains(&self, a: &[i64]) -> bool {
        a.len() == self.rank()
            && a.iter()
                .enumerate()
                .all(|(k, &v)| v >= 0 && v < self.extents[k])
    }

    /// Row-major linearization of an element index.
    pub fn linearize(&self, a: &[i64]) -> i64 {
        debug_assert!(
            self.contains(a),
            "linearize: {a:?} outside {:?}",
            self.extents
        );
        let mut off = 0;
        for (k, &v) in a.iter().enumerate() {
            off = off * self.extents[k] + v;
        }
        off
    }

    /// Inverse of [`linearize`](DataSpace::linearize).
    pub fn delinearize(&self, mut off: i64) -> Vec<i64> {
        debug_assert!(
            off >= 0 && off < self.num_elements(),
            "delinearize out of range"
        );
        let mut a = vec![0; self.rank()];
        for k in (0..self.rank()).rev() {
            a[k] = off % self.extents[k];
            off /= self.extents[k];
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterspace_basics() {
        let s = IterSpace::new(vec![0, 1], vec![3, 4]);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.trip_count(0), 3);
        assert_eq!(s.trip_count(1), 3);
        assert_eq!(s.total_iterations(), 9);
        assert!(s.contains(&[0, 1]));
        assert!(s.contains(&[2, 3]));
        assert!(!s.contains(&[3, 1]));
        assert!(!s.contains(&[0, 0]));
        assert!(!s.contains(&[0]));
    }

    #[test]
    #[should_panic(expected = "empty dimension")]
    fn empty_dimension_rejected() {
        IterSpace::new(vec![0], vec![0]);
    }

    #[test]
    fn lexicographic_iteration() {
        let s = IterSpace::from_extents(&[2, 3]);
        let all: Vec<Vec<i64>> = s.iter().collect();
        assert_eq!(
            all,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn iteration_count_matches_total() {
        let s = IterSpace::new(vec![-1, 2, 0], vec![2, 4, 2]);
        assert_eq!(s.iter().count() as i64, s.total_iterations());
    }

    #[test]
    fn one_dim_iteration() {
        let s = IterSpace::from_extents(&[4]);
        assert_eq!(s.iter().count(), 4);
    }

    #[test]
    fn dataspace_basics() {
        let d = DataSpace::new(vec![4, 5]);
        assert_eq!(d.rank(), 2);
        assert_eq!(d.num_elements(), 20);
        assert!(d.contains(&[3, 4]));
        assert!(!d.contains(&[4, 0]));
        assert!(!d.contains(&[-1, 0]));
    }

    #[test]
    fn linearize_roundtrip() {
        let d = DataSpace::new(vec![3, 4, 5]);
        for off in 0..d.num_elements() {
            let a = d.delinearize(off);
            assert!(d.contains(&a));
            assert_eq!(d.linearize(&a), off);
        }
    }

    #[test]
    fn linearize_is_row_major() {
        let d = DataSpace::new(vec![2, 3]);
        assert_eq!(d.linearize(&[0, 0]), 0);
        assert_eq!(d.linearize(&[0, 2]), 2);
        assert_eq!(d.linearize(&[1, 0]), 3);
    }

    #[test]
    #[should_panic(expected = "non-positive extent")]
    fn zero_extent_rejected() {
        DataSpace::new(vec![3, 0]);
    }
}
