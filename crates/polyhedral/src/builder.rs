//! Fluent construction of [`Program`]s.
//!
//! This is the interface the 16 workload kernels use to express themselves.
//! The paper's compiler extracts this information from MPI-IO source via
//! SUIF; here the builder plays the role of the front end (see DESIGN.md §1
//! for why this substitution is faithful).
//!
//! ```
//! use flo_polyhedral::ProgramBuilder;
//!
//! // The paper's Fig. 3(b) matmul fragment:
//! //   for i1 in 0..N, i2 in 0..N, i3 in 0..N:
//! //       W[i1,i2] += U[i1,i3] * V[i3,i2]
//! let mut b = ProgramBuilder::new();
//! let w = b.array("W", &[64, 64]);
//! let u = b.array("U", &[64, 64]);
//! let v = b.array("V", &[64, 64]);
//! b.nest(&[64, 64, 64])
//!     .write(w, &[&[1, 0, 0], &[0, 1, 0]])
//!     .read(u, &[&[1, 0, 0], &[0, 0, 1]])
//!     .read(v, &[&[0, 0, 1], &[0, 1, 0]])
//!     .done();
//! let program = b.build();
//! assert_eq!(program.arrays().len(), 3);
//! ```

use crate::access::AffineAccess;
use crate::nest::{AccessKind, ArrayRef, LoopNest};
use crate::program::{ArrayDecl, ArrayId, Program};
use crate::space::{DataSpace, IterSpace};
use flo_linalg::IMat;

/// Default element size (bytes) for arrays declared through the builder:
/// a double-precision float, as in the paper's out-of-core codes.
pub const DEFAULT_ELEMENT_SIZE: usize = 8;

/// Incrementally builds a [`Program`].
#[derive(Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Fresh builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            program: Program::new(),
        }
    }

    /// Declare a disk-resident array with the given extents.
    pub fn array(&mut self, name: &str, extents: &[i64]) -> ArrayId {
        self.array_sized(name, extents, DEFAULT_ELEMENT_SIZE)
    }

    /// Declare an array with an explicit element size.
    pub fn array_sized(&mut self, name: &str, extents: &[i64], element_size: usize) -> ArrayId {
        self.program.add_array(ArrayDecl {
            name: name.to_string(),
            space: DataSpace::new(extents.to_vec()),
            element_size,
        })
    }

    /// Start a loop nest with extents `0..e` per level.
    pub fn nest(&mut self, extents: &[i64]) -> NestBuilder<'_> {
        self.nest_bounds(&vec![0; extents.len()], extents)
    }

    /// Start a loop nest with explicit lower/upper bounds.
    pub fn nest_bounds(&mut self, lower: &[i64], upper: &[i64]) -> NestBuilder<'_> {
        NestBuilder {
            builder: self,
            space: IterSpace::new(lower.to_vec(), upper.to_vec()),
            refs: Vec::new(),
        }
    }

    /// Finish, returning the program.
    pub fn build(self) -> Program {
        self.program
    }
}

/// Builds one loop nest; obtained from [`ProgramBuilder::nest`].
pub struct NestBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    space: IterSpace,
    refs: Vec<ArrayRef>,
}

impl NestBuilder<'_> {
    /// Add a read reference with access matrix rows `q` and zero offset.
    pub fn read(self, array: ArrayId, q: &[&[i64]]) -> Self {
        self.reference(array, q, None, AccessKind::Read)
    }

    /// Add a write reference with access matrix rows `q` and zero offset.
    pub fn write(self, array: ArrayId, q: &[&[i64]]) -> Self {
        self.reference(array, q, None, AccessKind::Write)
    }

    /// Add a read reference with an offset vector (e.g. stencil neighbours).
    pub fn read_off(self, array: ArrayId, q: &[&[i64]], offset: &[i64]) -> Self {
        self.reference(array, q, Some(offset), AccessKind::Read)
    }

    /// Add a write reference with an offset vector.
    pub fn write_off(self, array: ArrayId, q: &[&[i64]], offset: &[i64]) -> Self {
        self.reference(array, q, Some(offset), AccessKind::Write)
    }

    fn reference(
        mut self,
        array: ArrayId,
        q: &[&[i64]],
        offset: Option<&[i64]>,
        kind: AccessKind,
    ) -> Self {
        let m = IMat::from_rows(q);
        let off = offset
            .map(<[i64]>::to_vec)
            .unwrap_or_else(|| vec![0; m.rows()]);
        self.refs.push(ArrayRef {
            array,
            access: AffineAccess::new(m, off),
            kind,
        });
        self
    }

    /// Close the nest and add it to the program.
    pub fn done(self) {
        let nest = LoopNest::new(self.space, self.refs);
        self.builder.program.add_nest(nest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_matmul() {
        let mut b = ProgramBuilder::new();
        let w = b.array("W", &[8, 8]);
        let u = b.array("U", &[8, 8]);
        let v = b.array("V", &[8, 8]);
        b.nest(&[8, 8, 8])
            .write(w, &[&[1, 0, 0], &[0, 1, 0]])
            .read(u, &[&[1, 0, 0], &[0, 0, 1]])
            .read(v, &[&[0, 0, 1], &[0, 1, 0]])
            .done();
        let p = b.build();
        assert_eq!(p.nests().len(), 1);
        assert_eq!(p.nests()[0].refs.len(), 3);
        let prof = p.access_profile(w);
        assert_eq!(prof.weighted_matrices.len(), 1);
        assert_eq!(prof.weighted_matrices[0].1, 512);
    }

    #[test]
    fn stencil_offsets_share_access_matrix() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[10, 10]);
        b.nest_bounds(&[1, 1], &[9, 9])
            .read(a, &[&[1, 0], &[0, 1]])
            .read_off(a, &[&[1, 0], &[0, 1]], &[-1, 0])
            .read_off(a, &[&[1, 0], &[0, 1]], &[1, 0])
            .read_off(a, &[&[1, 0], &[0, 1]], &[0, -1])
            .read_off(a, &[&[1, 0], &[0, 1]], &[0, 1])
            .done();
        let p = b.build();
        let prof = p.access_profile(a);
        // One distinct Q, weight = 5 refs × 64 iterations.
        assert_eq!(prof.weighted_matrices.len(), 1);
        assert_eq!(prof.weighted_matrices[0].1, 5 * 64);
    }

    #[test]
    fn element_size_override() {
        let mut b = ProgramBuilder::new();
        let a = b.array_sized("A", &[4], 4);
        let p = b.build();
        assert_eq!(p.array(a).element_size, 4);
    }
}
