//! Incremental affine evaluation along a lexicographic iteration walk.
//!
//! Trace generation evaluates `a = Q·i + q` for every dynamic iteration.
//! Evaluating the matrix product from scratch costs `m·n` multiplies per
//! iteration; but a lexicographic walk only ever *steps* the iteration
//! vector — by `+1` on one level, wrapping the deeper levels — so the
//! element vector moves by a precomputable constant delta per level:
//!
//! ```text
//! Δ_k = Q·e_k − Σ_{j>k} (trip_j − 1) · Q·e_j
//! ```
//!
//! An [`AccessCursor`] walks an iteration box maintaining `a` (and
//! optionally a scalar projection `⟨strides, a⟩`, which for dense file
//! layouts *is* the file offset) by pure vector/scalar additions.

use crate::access::AffineAccess;
use crate::space::IterSpace;

/// Incremental evaluator of one affine reference over one iteration box.
#[derive(Clone, Debug)]
pub struct AccessCursor {
    lower: Vec<i64>,
    upper: Vec<i64>,
    /// Current iteration vector (odometer state).
    i: Vec<i64>,
    /// Current element vector `Q·i + q`.
    a: Vec<i64>,
    /// Current scalar projection `⟨strides, a⟩` (0 when unprojected).
    proj: i64,
    /// `Q`'s columns: `cols[k][d] = Q[d][k]`.
    cols: Vec<Vec<i64>>,
    /// Element-vector delta applied when level `k` increments (deeper
    /// levels wrapping from their maximum back to their lower bound).
    deltas: Vec<Vec<i64>>,
    /// Scalar-projection counterpart of `deltas`.
    pdeltas: Vec<i64>,
    done: bool,
}

impl AccessCursor {
    /// Cursor over `space` without a scalar projection.
    pub fn new(access: &AffineAccess, space: &IterSpace) -> AccessCursor {
        Self::build(access, space, None)
    }

    /// Cursor additionally maintaining `⟨strides, a⟩` incrementally.
    /// `strides` must have one entry per array dimension.
    pub fn with_projection(
        access: &AffineAccess,
        space: &IterSpace,
        strides: &[i64],
    ) -> AccessCursor {
        assert_eq!(
            strides.len(),
            access.array_rank(),
            "projection rank mismatch"
        );
        Self::build(access, space, Some(strides))
    }

    fn build(access: &AffineAccess, space: &IterSpace, strides: Option<&[i64]>) -> AccessCursor {
        let n = space.rank();
        let m = access.array_rank();
        assert_eq!(access.iter_rank(), n, "cursor: access/space rank mismatch");
        let q = access.matrix();
        let cols: Vec<Vec<i64>> = (0..n)
            .map(|k| (0..m).map(|d| q.row(d)[k]).collect())
            .collect();
        // Δ_k = col_k − Σ_{j>k} (trip_j − 1)·col_j.
        let deltas: Vec<Vec<i64>> = (0..n)
            .map(|k| {
                let mut d = cols[k].clone();
                for (j, col) in cols.iter().enumerate().skip(k + 1) {
                    let wrap = space.trip_count(j) - 1;
                    for (dd, &c) in d.iter_mut().zip(col) {
                        *dd -= wrap * c;
                    }
                }
                d
            })
            .collect();
        let dot = |v: &[i64]| -> i64 {
            strides.map_or(0, |s| s.iter().zip(v).map(|(&x, &y)| x * y).sum())
        };
        let pdeltas = deltas.iter().map(|d| dot(d)).collect();
        let i: Vec<i64> = (0..n).map(|k| space.lower(k)).collect();
        let a = access.eval(&i);
        AccessCursor {
            lower: (0..n).map(|k| space.lower(k)).collect(),
            upper: (0..n).map(|k| space.upper(k)).collect(),
            proj: dot(&a),
            i,
            a,
            cols,
            deltas,
            pdeltas,
            done: false,
        }
    }

    /// Current iteration vector.
    pub fn iteration(&self) -> &[i64] {
        &self.i
    }

    /// Current element vector `Q·i + q`.
    pub fn element(&self) -> &[i64] {
        &self.a
    }

    /// Current scalar projection `⟨strides, a⟩` (0 if unprojected).
    pub fn projected(&self) -> i64 {
        self.proj
    }

    /// True once the walk has moved past the last iteration.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Iterations remaining in the current innermost segment (including
    /// the current one): stepping the innermost loop this many times
    /// visits them all with the element moving by a fixed stride per
    /// step. Returns 0 when exhausted.
    pub fn step_count(&self) -> i64 {
        if self.done {
            0
        } else {
            self.upper[self.upper.len() - 1] - self.i[self.i.len() - 1]
        }
    }

    /// Per-innermost-step movement of the element vector (`Q`'s last
    /// column).
    pub fn innermost_col(&self) -> &[i64] {
        &self.cols[self.cols.len() - 1]
    }

    /// Per-innermost-step movement of the scalar projection.
    pub fn innermost_step(&self) -> i64 {
        self.pdeltas[self.pdeltas.len() - 1]
    }

    /// Advance one iteration in lexicographic order. Returns the loop
    /// level that incremented, or `None` when the walk is exhausted.
    pub fn advance(&mut self) -> Option<usize> {
        if self.done {
            return None;
        }
        for k in (0..self.i.len()).rev() {
            if self.i[k] + 1 < self.upper[k] {
                self.i[k] += 1;
                for j in k + 1..self.i.len() {
                    self.i[j] = self.lower[j];
                }
                for (a, &d) in self.a.iter_mut().zip(&self.deltas[k]) {
                    *a += d;
                }
                self.proj += self.pdeltas[k];
                return Some(k);
            }
        }
        self.done = true;
        None
    }

    /// Step the innermost loop by `steps` without leaving the current
    /// segment (`steps < step_count()`).
    pub fn skip_innermost(&mut self, steps: i64) {
        debug_assert!(
            !self.done && steps < self.step_count(),
            "skip_innermost out of segment"
        );
        let last = self.i.len() - 1;
        self.i[last] += steps;
        let col = &self.cols[last];
        for (a, &c) in self.a.iter_mut().zip(col) {
            *a += steps * c;
        }
        self.proj += steps * self.pdeltas[last];
    }

    /// Consume the rest of the current innermost segment and advance to
    /// the start of the next one. Returns `false` when the walk is
    /// exhausted.
    pub fn finish_segment(&mut self) -> bool {
        let rem = self.step_count() - 1;
        if rem > 0 {
            self.skip_innermost(rem);
        }
        self.advance().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flo_linalg::IMat;

    fn acc(rows: &[&[i64]], offset: Vec<i64>) -> AffineAccess {
        AffineAccess::new(IMat::from_rows(rows), offset)
    }

    #[test]
    fn cursor_matches_eval_everywhere() {
        let a = acc(&[&[1, 1], &[0, 2]], vec![3, -1]);
        let space = IterSpace::new(vec![-1, 2], vec![3, 6]);
        let mut c = AccessCursor::new(&a, &space);
        for i in space.iter() {
            assert_eq!(c.iteration(), &i[..]);
            assert_eq!(c.element(), &a.eval(&i)[..]);
            c.advance();
        }
        assert!(c.is_done());
        assert_eq!(c.advance(), None);
    }

    #[test]
    fn projection_tracks_dot_product() {
        let a = acc(&[&[0, 1], &[1, 0]], vec![0, 0]);
        let space = IterSpace::from_extents(&[3, 4]);
        let strides = [4, 1]; // row-major over a 4-wide array
        let mut c = AccessCursor::with_projection(&a, &space, &strides);
        for i in space.iter() {
            let e = a.eval(&i);
            assert_eq!(c.projected(), strides[0] * e[0] + strides[1] * e[1]);
            c.advance();
        }
    }

    #[test]
    fn step_count_spans_innermost_segments() {
        let a = acc(&[&[1, 0], &[0, 1]], vec![0, 0]);
        let space = IterSpace::from_extents(&[2, 5]);
        let mut c = AccessCursor::new(&a, &space);
        assert_eq!(c.step_count(), 5);
        assert_eq!(c.advance(), Some(1));
        assert_eq!(c.step_count(), 4);
        assert!(c.finish_segment());
        assert_eq!(c.iteration(), &[1, 0]);
        assert_eq!(c.step_count(), 5);
        assert!(!c.finish_segment());
        assert_eq!(c.step_count(), 0);
    }

    #[test]
    fn skip_innermost_keeps_state_consistent() {
        let a = acc(&[&[2, -1], &[1, 3]], vec![5, 0]);
        let space = IterSpace::from_extents(&[3, 7]);
        let mut c = AccessCursor::new(&a, &space);
        c.skip_innermost(4);
        assert_eq!(c.iteration(), &[0, 4]);
        assert_eq!(c.element(), &a.eval(&[0, 4])[..]);
        assert_eq!(c.advance(), Some(1));
        assert_eq!(c.element(), &a.eval(&[0, 5])[..]);
    }

    #[test]
    fn rank_one_nest() {
        let a = acc(&[&[3]], vec![1]);
        let space = IterSpace::from_extents(&[4]);
        let mut c = AccessCursor::new(&a, &space);
        assert_eq!(c.step_count(), 4);
        assert_eq!(c.element(), &[1]);
        assert!(!c.finish_segment());
        assert!(c.is_done());
    }
}
