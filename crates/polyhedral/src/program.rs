//! Whole-program view: array declarations plus loop nests, and the
//! per-array access profile that drives Step I's weighted solver.

use crate::nest::LoopNest;
use crate::space::DataSpace;
use flo_linalg::IMat;
use std::collections::HashMap;

/// Identifier of a disk-resident array within a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// Declaration of one disk-resident array. Each array is stored in its own
/// file (paper §4, footnote 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name (used in reports).
    pub name: String,
    /// The data space (extents).
    pub space: DataSpace,
    /// Element size in bytes (used when converting element counts to
    /// capacity units).
    pub element_size: usize,
}

/// A whole program: arrays + loop nests.
#[derive(Clone, Debug, Default)]
pub struct Program {
    arrays: Vec<ArrayDecl>,
    nests: Vec<LoopNest>,
}

/// The access profile of one array: every *distinct* access matrix `Q_i`
/// appearing in references to it, with the paper's weight
/// `W(Q_i) = Σ_j n_j` (Eq. 5) summed over references sharing that matrix.
#[derive(Clone, Debug)]
pub struct AccessProfile {
    /// Distinct access matrices with their accumulated weights, sorted by
    /// descending weight (ties broken deterministically by matrix entries).
    pub weighted_matrices: Vec<(IMat, i64)>,
    /// Total number of dynamic element accesses to the array.
    pub total_accesses: i64,
}

impl Program {
    /// Empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Declare an array; returns its id.
    pub fn add_array(&mut self, decl: ArrayDecl) -> ArrayId {
        self.arrays.push(decl);
        ArrayId(self.arrays.len() - 1)
    }

    /// Append a loop nest, validating its references against declared
    /// arrays.
    pub fn add_nest(&mut self, nest: LoopNest) {
        for r in &nest.refs {
            let decl = self
                .arrays
                .get(r.array.0)
                .unwrap_or_else(|| panic!("nest references undeclared array {:?}", r.array));
            assert_eq!(
                r.access.array_rank(),
                decl.space.rank(),
                "reference rank does not match array '{}'",
                decl.name
            );
        }
        self.nests.push(nest);
    }

    /// The declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Declaration for `id`.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// All array ids.
    pub fn array_ids(&self) -> impl Iterator<Item = ArrayId> {
        (0..self.arrays.len()).map(ArrayId)
    }

    /// The loop nests in program order.
    pub fn nests(&self) -> &[LoopNest] {
        &self.nests
    }

    /// Build the weighted access profile for `array` across every nest
    /// (Eq. 5). Offsets are ignored on purpose: two references that differ
    /// only by a constant offset share a `Q` and therefore share a
    /// partitioning constraint.
    pub fn access_profile(&self, array: ArrayId) -> AccessProfile {
        let mut weights: HashMap<IMat, i64> = HashMap::new();
        let mut total = 0i64;
        for nest in &self.nests {
            let w = nest.reference_weight();
            for r in nest.refs_to(array) {
                *weights.entry(r.access.matrix().clone()).or_insert(0) += w;
                total += w;
            }
        }
        let mut weighted_matrices: Vec<(IMat, i64)> = weights.into_iter().collect();
        weighted_matrices.sort_by(|(ma, wa), (mb, wb)| {
            wb.cmp(wa).then_with(|| {
                // Deterministic tie-break on entries so compiler output is
                // stable across runs.
                let ka: Vec<i64> = ma.rows_iter().flatten().copied().collect();
                let kb: Vec<i64> = mb.rows_iter().flatten().copied().collect();
                ka.cmp(&kb)
            })
        });
        AccessProfile {
            weighted_matrices,
            total_accesses: total,
        }
    }

    /// Total dynamic element accesses over all arrays (used by the
    /// execution-time model for the compute/IO ratio).
    pub fn total_accesses(&self) -> i64 {
        self.nests
            .iter()
            .map(|n| n.reference_weight() * n.refs.len() as i64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AffineAccess;
    use crate::nest::{AccessKind, ArrayRef};
    use crate::space::IterSpace;

    fn decl(name: &str, extents: &[i64]) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            space: DataSpace::new(extents.to_vec()),
            element_size: 8,
        }
    }

    #[test]
    fn profile_accumulates_weights_per_matrix() {
        let mut p = Program::new();
        let a = p.add_array(decl("A", &[16, 16]));
        // Nest 1: 8x8 = 64 iterations, two refs with the same Q.
        p.add_nest(LoopNest::new(
            IterSpace::from_extents(&[8, 8]),
            vec![
                ArrayRef {
                    array: a,
                    access: AffineAccess::identity(2),
                    kind: AccessKind::Read,
                },
                ArrayRef {
                    array: a,
                    access: AffineAccess::new(flo_linalg::IMat::identity(2), vec![0, 1]),
                    kind: AccessKind::Read,
                },
            ],
        ));
        // Nest 2: 4x4 = 16 iterations, transposed ref.
        p.add_nest(LoopNest::new(
            IterSpace::from_extents(&[4, 4]),
            vec![ArrayRef {
                array: a,
                access: AffineAccess::linear(flo_linalg::IMat::from_rows(&[&[0, 1], &[1, 0]])),
                kind: AccessKind::Write,
            }],
        ));
        let prof = p.access_profile(a);
        assert_eq!(
            prof.weighted_matrices.len(),
            2,
            "offset-only refs must share a Q"
        );
        // Identity matrix has weight 64 + 64 = 128, transpose 16.
        assert_eq!(prof.weighted_matrices[0].1, 128);
        assert_eq!(prof.weighted_matrices[1].1, 16);
        assert_eq!(prof.total_accesses, 144);
        // Heaviest first.
        assert_eq!(prof.weighted_matrices[0].0, flo_linalg::IMat::identity(2));
    }

    #[test]
    fn profile_of_untouched_array_is_empty() {
        let mut p = Program::new();
        let a = p.add_array(decl("A", &[4]));
        let prof = p.access_profile(a);
        assert!(prof.weighted_matrices.is_empty());
        assert_eq!(prof.total_accesses, 0);
    }

    #[test]
    #[should_panic(expected = "undeclared array")]
    fn undeclared_array_rejected() {
        let mut p = Program::new();
        p.add_nest(LoopNest::new(
            IterSpace::from_extents(&[2]),
            vec![ArrayRef {
                array: ArrayId(3),
                access: AffineAccess::identity(1),
                kind: AccessKind::Read,
            }],
        ));
    }

    #[test]
    #[should_panic(expected = "does not match array")]
    fn rank_mismatch_rejected() {
        let mut p = Program::new();
        let a = p.add_array(decl("A", &[4, 4]));
        p.add_nest(LoopNest::new(
            IterSpace::from_extents(&[2]),
            vec![ArrayRef {
                array: a,
                access: AffineAccess::identity(1),
                kind: AccessKind::Read,
            }],
        ));
    }

    #[test]
    fn total_accesses_counts_all_refs() {
        let mut p = Program::new();
        let a = p.add_array(decl("A", &[8, 8]));
        p.add_nest(LoopNest::new(
            IterSpace::from_extents(&[3, 3]),
            vec![
                ArrayRef {
                    array: a,
                    access: AffineAccess::identity(2),
                    kind: AccessKind::Read,
                },
                ArrayRef {
                    array: a,
                    access: AffineAccess::identity(2),
                    kind: AccessKind::Write,
                },
            ],
        ));
        assert_eq!(p.total_accesses(), 18);
    }
}
