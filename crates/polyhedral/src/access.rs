//! Affine array references `a = Q·i + q`.

use flo_linalg::IMat;

/// An affine mapping from an `n`-dimensional iteration space to an
/// `m`-dimensional data space: `a = Q·i + q` with `Q` the `m × n` access
/// matrix and `q` the `m`-vector offset (the paper's `\vec{q}` / `\vec{o}`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AffineAccess {
    q: IMat,
    offset: Vec<i64>,
}

impl AffineAccess {
    /// Build from an access matrix and offset vector.
    pub fn new(q: IMat, offset: Vec<i64>) -> AffineAccess {
        assert_eq!(q.rows(), offset.len(), "AffineAccess: offset rank mismatch");
        AffineAccess { q, offset }
    }

    /// Build with a zero offset.
    pub fn linear(q: IMat) -> AffineAccess {
        let m = q.rows();
        AffineAccess {
            q,
            offset: vec![0; m],
        }
    }

    /// Access matrix rows = array rank `m`.
    pub fn array_rank(&self) -> usize {
        self.q.rows()
    }

    /// Access matrix columns = iteration space rank `n`.
    pub fn iter_rank(&self) -> usize {
        self.q.cols()
    }

    /// The access matrix `Q`.
    pub fn matrix(&self) -> &IMat {
        &self.q
    }

    /// The offset vector `q`.
    pub fn offset(&self) -> &[i64] {
        &self.offset
    }

    /// Evaluate the reference at iteration `i`: returns `Q·i + q`.
    pub fn eval(&self, i: &[i64]) -> Vec<i64> {
        let mut a = vec![0; self.q.rows()];
        self.eval_into(i, &mut a);
        a
    }

    /// Allocation-free evaluation into a caller-provided buffer (the trace
    /// generator calls this once per dynamic reference).
    pub fn eval_into(&self, i: &[i64], out: &mut [i64]) {
        debug_assert_eq!(out.len(), self.q.rows());
        for (r, slot) in out.iter_mut().enumerate() {
            let row = self.q.row(r);
            let mut acc = self.offset[r];
            for (k, &ik) in i.iter().enumerate() {
                acc += row[k] * ik;
            }
            *slot = acc;
        }
    }

    /// The reference after a data transformation `D` (`r' = D·r`): access
    /// matrix becomes `D·Q`, offset becomes `D·q`. This is exactly how the
    /// compiler rewrites array index functions after Step I.
    pub fn transformed(&self, d: &IMat) -> AffineAccess {
        assert_eq!(d.cols(), self.q.rows(), "transformed: D rank mismatch");
        AffineAccess {
            q: d * &self.q,
            offset: d.mul_vec(&self.offset),
        }
    }

    /// Identity access (`a = i`), valid when array rank equals loop rank.
    pub fn identity(n: usize) -> AffineAccess {
        AffineAccess::linear(IMat::identity(n))
    }

    /// Convenience constructor from nested rows.
    pub fn from_rows(rows: &[&[i64]], offset: Vec<i64>) -> AffineAccess {
        AffineAccess::new(IMat::from_rows(rows), offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_with_offset() {
        // a = (i2 + 1, i1) — a transposed access with an offset.
        let acc = AffineAccess::from_rows(&[&[0, 1], &[1, 0]], vec![1, 0]);
        assert_eq!(acc.eval(&[3, 5]), vec![6, 3]);
        assert_eq!(acc.array_rank(), 2);
        assert_eq!(acc.iter_rank(), 2);
    }

    #[test]
    fn identity_access() {
        let acc = AffineAccess::identity(3);
        assert_eq!(acc.eval(&[7, 8, 9]), vec![7, 8, 9]);
    }

    #[test]
    fn rectangular_access() {
        // 2-D array indexed from a 3-deep loop: W[i1, i2] in the paper's
        // matmul example.
        let acc = AffineAccess::from_rows(&[&[1, 0, 0], &[0, 1, 0]], vec![0, 0]);
        assert_eq!(acc.eval(&[4, 5, 6]), vec![4, 5]);
    }

    #[test]
    fn transform_composes() {
        let acc = AffineAccess::from_rows(&[&[1, 0], &[0, 1]], vec![2, 3]);
        let d = IMat::from_rows(&[&[0, 1], &[1, 0]]); // swap dims
        let t = acc.transformed(&d);
        // For any iteration, t.eval(i) == D · acc.eval(i).
        for i in [[0i64, 0], [1, 2], [5, 7]] {
            assert_eq!(t.eval(&i), d.mul_vec(&acc.eval(&i)));
        }
    }

    #[test]
    #[should_panic(expected = "offset rank mismatch")]
    fn bad_offset_rank() {
        AffineAccess::new(IMat::identity(2), vec![0]);
    }
}
