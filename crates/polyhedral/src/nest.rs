//! Loop nests and array references.

use crate::access::AffineAccess;
use crate::program::ArrayId;
use crate::space::IterSpace;

/// Whether a reference reads or writes the array. Step I treats both alike
/// (the layout must serve every touch); the simulator distinguishes them for
/// statistics and for write-allocate behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read reference.
    Read,
    /// Write reference.
    Write,
}

/// A single array reference inside a loop nest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayRef {
    /// Which disk-resident array is referenced.
    pub array: ArrayId,
    /// The affine index function `a = Q·i + q`.
    pub access: AffineAccess,
    /// Read or write.
    pub kind: AccessKind,
}

/// A (perfectly nested, affine) loop nest with the references in its body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopNest {
    /// The iteration space of the nest.
    pub space: IterSpace,
    /// References executed each iteration, in program order.
    pub refs: Vec<ArrayRef>,
}

impl LoopNest {
    /// Create a nest, validating that every reference consumes the nest's
    /// iteration vector.
    pub fn new(space: IterSpace, refs: Vec<ArrayRef>) -> LoopNest {
        for r in &refs {
            assert_eq!(
                r.access.iter_rank(),
                space.rank(),
                "LoopNest: reference iteration rank must equal nest rank"
            );
        }
        LoopNest { space, refs }
    }

    /// The weight `n_j` of every reference in this nest (Eq. 5): the product
    /// of the trip counts of the loops enclosing it. All references sit in
    /// the innermost body, so this is the nest's total iteration count.
    pub fn reference_weight(&self) -> i64 {
        self.space.total_iterations()
    }

    /// References touching a particular array.
    pub fn refs_to(&self, array: ArrayId) -> impl Iterator<Item = &ArrayRef> {
        self.refs.iter().filter(move |r| r.array == array)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flo_linalg::IMat;

    fn sample_nest() -> LoopNest {
        let space = IterSpace::from_extents(&[4, 8]);
        let a0 = ArrayId(0);
        let a1 = ArrayId(1);
        LoopNest::new(
            space,
            vec![
                ArrayRef {
                    array: a0,
                    access: AffineAccess::identity(2),
                    kind: AccessKind::Read,
                },
                ArrayRef {
                    array: a1,
                    access: AffineAccess::linear(IMat::from_rows(&[&[0, 1], &[1, 0]])),
                    kind: AccessKind::Write,
                },
                ArrayRef {
                    array: a0,
                    access: AffineAccess::identity(2),
                    kind: AccessKind::Write,
                },
            ],
        )
    }

    #[test]
    fn weight_is_total_iterations() {
        assert_eq!(sample_nest().reference_weight(), 32);
    }

    #[test]
    fn refs_to_filters_by_array() {
        let nest = sample_nest();
        assert_eq!(nest.refs_to(ArrayId(0)).count(), 2);
        assert_eq!(nest.refs_to(ArrayId(1)).count(), 1);
        assert_eq!(nest.refs_to(ArrayId(2)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "iteration rank")]
    fn rank_mismatch_rejected() {
        LoopNest::new(
            IterSpace::from_extents(&[4]),
            vec![ArrayRef {
                array: ArrayId(0),
                access: AffineAccess::identity(2),
                kind: AccessKind::Read,
            }],
        );
    }
}
