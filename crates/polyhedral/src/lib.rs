//! # flo-polyhedral
//!
//! The compiler's intermediate representation: a small polyhedral model of
//! affine loop nests over disk-resident arrays, exactly as §3 of the paper
//! describes.
//!
//! * An *iteration space* is an `n`-dimensional box of iteration vectors
//!   `i = (i₁, …, iₙ)` ([`IterSpace`]).
//! * A *data space* is an `m`-dimensional box of array indices
//!   ([`DataSpace`], one per disk-resident [`ArrayDecl`]).
//! * An *array reference* maps iterations to data: `a = Q·i + q`
//!   ([`AffineAccess`]); `Q` is the access matrix, `q` the offset vector.
//! * *Hyperplanes* partition either space ([`hyperplane`]); the iteration
//!   hyperplane vector `h_I` and data hyperplane vector `h_A` of Step I are
//!   unit vectors built here.
//!
//! Programs are assembled with [`builder::ProgramBuilder`], which is what
//! the 16 workload kernels in `flo-workloads` use. Nothing in this crate
//! depends on the storage hierarchy; it is pure compiler front-half.

pub mod access;
pub mod builder;
pub mod cursor;
pub mod hyperplane;
pub mod nest;
pub mod program;
pub mod space;

pub use access::AffineAccess;
pub use builder::{NestBuilder, ProgramBuilder};
pub use cursor::AccessCursor;
pub use hyperplane::{e_u_matrix, unit_hyperplane, Hyperplane};
pub use nest::{AccessKind, ArrayRef, LoopNest};
pub use program::{AccessProfile, ArrayDecl, ArrayId, Program};
pub use space::{DataSpace, IterSpace};
