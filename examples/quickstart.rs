//! Quickstart: run the compiler pass on the paper's matmul fragment and
//! watch the block footprint collapse.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flo::core::cost::footprint;
use flo::core::tracegen::{default_layouts, generate_traces};
use flo::core::{run_layout_pass, PassOptions};
use flo::polyhedral::ProgramBuilder;
use flo::sim::{simulate, PolicyKind, StorageSystem, Topology};

fn main() {
    // 1. Express the program: the out-of-core matrix multiplication of the
    //    paper's Fig. 3(b), W[i1,i2] += U[i1,i3] · V[i3,i2], with a
    //    *transposed* result sweep afterwards (the pattern row-major
    //    layouts serve poorly).
    let mut b = ProgramBuilder::new();
    let w = b.array("W", &[256, 256]);
    let u = b.array("U", &[256, 256]);
    let v = b.array("V", &[256, 256]);
    b.nest(&[256, 32, 32])
        .write(w, &[&[1, 0, 0], &[0, 1, 0]])
        .read(u, &[&[1, 0, 0], &[0, 0, 1]])
        .read(v, &[&[0, 0, 1], &[0, 1, 0]])
        .done();
    // Post-processing sweeps W column-by-column, many times — the
    // dominant pattern, and the one row-major layouts serve worst.
    for _ in 0..6 {
        b.nest(&[256, 256]).read(w, &[&[0, 1], &[1, 0]]).done();
    }
    let program = b.build();

    // 2. Describe the platform: the paper's 64/16/4 hierarchy.
    let topo = Topology::paper_default();
    let opts = PassOptions::default_for(&topo);

    // 3. Run the layout pass.
    let plan = run_layout_pass(&program, &topo, &opts);
    println!("layout pass finished in {:.1} ms", plan.compile_ms);
    for report in &plan.reports {
        match &report.d_row {
            Some(d) => println!(
                "  array {:<2}: optimized, d = {:?} ({}% of reference weight satisfied)",
                report.name,
                d,
                (report.satisfied_weight_fraction * 100.0) as u32
            ),
            None => println!(
                "  array {:<2}: kept row-major (not partitionable)",
                report.name
            ),
        }
    }

    // 4. Compare block footprints and simulated execution.
    let cfg = &opts.parallel;
    let before = generate_traces(&program, cfg, &default_layouts(&program), &topo);
    let after = generate_traces(&program, cfg, &plan.layouts, &topo);
    let fp_before = footprint(&before, &topo);
    let fp_after = footprint(&after, &topo);
    println!(
        "max per-thread block footprint: {} -> {} blocks",
        fp_before.max_thread_footprint(),
        fp_after.max_thread_footprint()
    );

    let run = |traces| {
        let mut system = StorageSystem::new(topo.clone(), PolicyKind::LruInclusive)
            .expect("example topology is valid");
        simulate(&mut system, traces, &Default::default())
    };
    let r_before = run(&before);
    let r_after = run(&after);
    println!(
        "I/O-cache miss rate:  {:.1}% -> {:.1}%",
        r_before.io_miss_rate() * 100.0,
        r_after.io_miss_rate() * 100.0
    );
    println!(
        "disk reads:           {} -> {}",
        r_before.disk_reads, r_after.disk_reads
    );
    println!(
        "I/O stall (slowest):  {:.1} ms -> {:.1} ms ({:.1}% better)",
        r_before.execution_time_ms,
        r_after.execution_time_ms,
        (1.0 - r_after.execution_time_ms / r_before.execution_time_ms) * 100.0
    );
}
