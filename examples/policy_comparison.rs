//! Run one of the paper's applications under all three hierarchy
//! management policies (LRU inclusive, KARMA, DEMOTE-LRU), with and
//! without the layout optimization — the per-app view behind Fig. 7(h).
//!
//! ```sh
//! cargo run --release --example policy_comparison [app]
//! ```
//!
//! `app` defaults to `qio`; any Table 2 name works.

use flo::bench::harness::{run_app, RunOverrides, Scheme};
use flo::sim::PolicyKind;
use flo::workloads::{by_name, Scale, PAPER_ORDER};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "qio".to_string());
    let Some(workload) = by_name(&name, Scale::Full) else {
        eprintln!("unknown application '{name}'; choose one of {PAPER_ORDER:?}");
        std::process::exit(1);
    };
    let topo = flo::sim::Topology::paper_default();
    println!("{} — {}", workload.name, workload.description);
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "policy", "exec_def", "exec_inter", "norm", "io_miss%", "demotions"
    );
    for policy in PolicyKind::all() {
        let ov = RunOverrides::default();
        let base =
            flo::bench::exit_on_error(run_app(&workload, &topo, policy, Scheme::Default, &ov));
        let opt = flo::bench::exit_on_error(run_app(&workload, &topo, policy, Scheme::Inter, &ov));
        println!(
            "{:<14} {:>10.0}ms {:>10.0}ms {:>10.3} {:>10.1} {:>10}",
            policy.name(),
            base.exec_ms(),
            opt.exec_ms(),
            opt.exec_ms() / base.exec_ms(),
            opt.report.io_miss_rate() * 100.0,
            opt.report.demotions,
        );
    }
    println!();
    println!("The layout optimization composes with any management policy (§5.4);");
    println!("exclusive policies (KARMA, DEMOTE-LRU) typically amplify it.");
}
