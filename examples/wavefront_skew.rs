//! The case dimension reindexing cannot touch: a wavefront-parallel
//! solver whose partitioning hyperplane is skewed (`d = (1, −1, −1)`).
//!
//! The example builds an applu-style wavefront kernel, shows Step I
//! producing a non-axis-aligned unimodular transformation, and compares
//! the inter-node layout against the *best possible* dimension
//! permutation found by exhaustive profiling (the FAST'08 baseline [27]).
//!
//! ```sh
//! cargo run --release --example wavefront_skew
//! ```

use flo::core::baseline::reindex::best_reindexing;
use flo::core::tracegen::{default_layouts, generate_traces};
use flo::core::{run_layout_pass, FileLayout, ParallelConfig, PassOptions};
use flo::polyhedral::ProgramBuilder;
use flo::sim::{simulate, PolicyKind, RunConfig, StorageSystem, Topology};

fn main() {
    let z = 40;
    let mut b = ProgramBuilder::new();
    // Wavefront-staged flow variable: a = (i1 + i2 + i3, i2, i3) with the
    // wavefront loop i1 parallelized.
    let rsd = b.array("rsd", &[3 * z - 2, z, z]);
    let wave: &[&[i64]] = &[&[1, 1, 1], &[0, 1, 0], &[0, 0, 1]];
    for _ in 0..2 {
        b.nest(&[z, z, z]).read(rsd, wave).write(rsd, wave).done();
    }
    let program = b.build();
    let topo = Topology::paper_default();
    let cfg = ParallelConfig::default_for(topo.compute_nodes);

    // Step I on the wavefront access.
    let mut opts = PassOptions::default_for(&topo);
    opts.parallel = cfg.clone();
    let plan = run_layout_pass(&program, &topo, &opts);
    let d = plan.reports[0]
        .d_row
        .as_ref()
        .expect("wavefront must optimize");
    println!("Step I partitioning row: d = {d:?}  (skewed — not a permutation)");

    // The reindexing baseline exhaustively profiles all 6 permutations.
    let reindexed = best_reindexing(&program, &cfg, &topo).expect("example config is valid");
    if let FileLayout::DimPerm(p) = &reindexed.layouts[0] {
        println!(
            "best of {} profiled permutations: {:?} — still leaves wavefronts scattered",
            reindexed.profile_runs, p
        );
    }

    let run = |layouts: &[FileLayout]| {
        let traces = generate_traces(&program, &cfg, layouts, &topo);
        let mut system = StorageSystem::new(topo.clone(), PolicyKind::LruInclusive)
            .expect("example topology is valid");
        simulate(&mut system, &traces, &RunConfig::default())
    };
    let base = run(&default_layouts(&program));
    let perm = run(&reindexed.layouts);
    let inter = run(&plan.layouts);
    println!();
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "layout", "I/O stall", "disk reads", "io miss%"
    );
    for (name, r) in [
        ("row-major (default)", &base),
        ("best reindexing [27]", &perm),
        ("inter-node (paper)", &inter),
    ] {
        println!(
            "{:<22} {:>10.0}ms {:>12} {:>10.1}",
            name,
            r.execution_time_ms,
            r.disk_reads,
            r.io_miss_rate() * 100.0
        );
    }
    println!();
    println!(
        "inter vs best permutation: {:.1}% less I/O stall — the skewed hyperplane",
        (1.0 - inter.execution_time_ms / perm.execution_time_ms) * 100.0
    );
    println!("is exactly the layout class §5.4 argues reindexing cannot express.");
}
