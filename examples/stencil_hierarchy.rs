//! A shallow-water stencil (swim-like) across different storage
//! hierarchies: demonstrates how the same program gets a *different*
//! optimized layout for each cache topology, and what each layout buys.
//!
//! ```sh
//! cargo run --release --example stencil_hierarchy
//! ```

use flo::core::tracegen::{default_layouts, generate_traces};
use flo::core::{run_layout_pass, PassOptions};
use flo::polyhedral::{Program, ProgramBuilder};
use flo::sim::{simulate, PolicyKind, RunConfig, StorageSystem, Topology};

/// Three time steps of a transposed five-point stencil over two fields.
fn stencil_program(n: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let u = b.array("u", &[n, n]);
    let unew = b.array("unew", &[n, n]);
    let t: &[&[i64]] = &[&[0, 1], &[1, 0]];
    for _ in 0..3 {
        b.nest_bounds(&[1, 1], &[n - 1, n - 1])
            .read(u, t)
            .read_off(u, t, &[1, 0])
            .read_off(u, t, &[-1, 0])
            .read_off(u, t, &[0, 1])
            .read_off(u, t, &[0, -1])
            .write(unew, t)
            .done();
        b.nest(&[n, n]).read(unew, t).write(u, t).done();
    }
    b.build()
}

fn main() {
    let program = stencil_program(256);
    // Hierarchies: the paper default, a flatter one, and a deeper share.
    let topologies = [
        (
            "64 compute / 16 I/O / 4 storage (paper)",
            Topology::paper_default(),
        ),
        (
            "64 compute /  8 I/O / 2 storage (more sharing)",
            Topology::paper_default().with_node_counts(64, 8, 2),
        ),
        (
            "64 compute / 32 I/O / 8 storage (less sharing)",
            Topology::paper_default().with_node_counts(64, 32, 8),
        ),
    ];
    println!(
        "{:<48} {:>10} {:>10} {:>8}",
        "hierarchy", "stall_def", "stall_opt", "gain"
    );
    for (name, topo) in topologies {
        let opts = PassOptions::default_for(&topo);
        let plan = run_layout_pass(&program, &topo, &opts);
        let run = |layouts: &[flo::core::FileLayout]| {
            let traces = generate_traces(&program, &opts.parallel, layouts, &topo);
            let mut system = StorageSystem::new(topo.clone(), PolicyKind::LruInclusive)
                .expect("example topology is valid");
            simulate(&mut system, &traces, &RunConfig::default()).execution_time_ms
        };
        let def = run(&default_layouts(&program));
        let opt = run(&plan.layouts);
        println!(
            "{:<48} {:>8.0}ms {:>8.0}ms {:>7.1}%",
            name,
            def,
            opt,
            (1.0 - opt / def) * 100.0
        );
    }
    println!();
    println!("The pass re-chunks the same arrays differently for each hierarchy;");
    println!("more cache sharing leaves more contention for the layout to remove.");
}
