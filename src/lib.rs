//! # flo — compiler-directed file layout optimization for hierarchical storage systems
//!
//! A from-scratch Rust reproduction of Ding, Zhang, Kandemir & Son,
//! *"Compiler-directed file layout optimization for hierarchical storage
//! systems"* (SC 2012): a compiler pass that, given a parallelized affine
//! program and a description of a multi-layer storage-cache hierarchy,
//! determines a file layout for each disk-resident array such that every
//! thread's data lands in consecutive file locations, chunk-interleaved to
//! match the cache hierarchy.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`linalg`] — exact integer linear algebra (Gaussian elimination,
//!   nullspaces, unimodular completion),
//! * [`polyhedral`] — the affine loop-nest / array IR,
//! * [`parallel`] — iteration-block parallelization & thread mappings,
//! * [`core`] — the paper's contribution: Step I array partitioning,
//!   Step II hierarchy-aware layouts (Algorithm 1), the layout pass, the
//!   prior-work baselines,
//! * [`sim`] — the trace-driven multi-layer storage-cache simulator
//!   (LRU / KARMA / DEMOTE-LRU, striped disks),
//! * [`workloads`] — the 16 evaluation applications of Table 2,
//! * [`mod@bench`] — the experiment harness regenerating every table and
//!   figure of §5.
//!
//! ## Quickstart
//!
//! ```
//! use flo::core::{run_layout_pass, PassOptions};
//! use flo::polyhedral::ProgramBuilder;
//! use flo::sim::Topology;
//!
//! // The paper's matmul fragment (Fig. 3(b)).
//! let mut b = ProgramBuilder::new();
//! let w = b.array("W", &[64, 64]);
//! let u = b.array("U", &[64, 64]);
//! let v = b.array("V", &[64, 64]);
//! b.nest(&[64, 64, 64])
//!     .write(w, &[&[1, 0, 0], &[0, 1, 0]])
//!     .read(u, &[&[1, 0, 0], &[0, 0, 1]])
//!     .read(v, &[&[0, 0, 1], &[0, 1, 0]])
//!     .done();
//! let program = b.build();
//!
//! let topo = Topology::tiny();
//! let plan = run_layout_pass(&program, &topo, &PassOptions::default_for(&topo));
//! // W and U partition along i1; V cannot be optimized (paper §4.1).
//! assert!(plan.reports[0].optimized && plan.reports[1].optimized);
//! assert!(!plan.reports[2].optimized);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the paper's experiments.

pub use flo_bench as bench;
pub use flo_core as core;
pub use flo_linalg as linalg;
pub use flo_parallel as parallel;
pub use flo_polyhedral as polyhedral;
pub use flo_sim as sim;
pub use flo_workloads as workloads;
